// JAX port of build_noise_weighted: functional scatter_add into the map
// domain (x.at[pix].add(...)).  The scanning pattern makes the update
// indices unsorted, so the XLA lowering pays atomic contention - unlike
// the sorted segment scatter of template_offset_project_signal.

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  std::int64_t nnz = 0;
  std::int64_t flag_mask = 0;
} s;

std::vector<xla::Array> graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array pixels = in[3], weights = in[4], signal = in[5],
              det_scale = in[6], flags = in[7], zmap = in[8];

  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array pix = gather(pixels, idx.detmaj);
  const Array flag = gather(flags, idx.samp);
  const Array flagged =
      ne(bitwise_and(flag, constant_i64(s.flag_mask)), constant_i64(0));
  const Array good = logical_and(
      idx.valid,
      logical_and(logical_not(flagged), ge(pix, constant_i64(0))));

  const Array z = gather(det_scale, idx.det) * gather(signal, idx.detmaj);
  const Array safe_pix = maximum(pix, constant_i64(0));

  Array out = zmap;
  for (std::int64_t k = 0; k < s.nnz; ++k) {
    const Array widx =
        add(mul(idx.detmaj, constant_i64(s.nnz)), constant_i64(k));
    const Array midx =
        add(mul(safe_pix, constant_i64(s.nnz)), constant_i64(k));
    out = scatter_add(out, masked(midx, good), z * gather(weights, widx));
  }
  return {out};
}

}  // namespace

void build_noise_weighted(const std::int64_t* pixels, const double* weights,
                          std::int64_t n_pix, std::int64_t nnz,
                          const double* signal, const double* det_scale,
                          const std::uint8_t* shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          double* zmap, core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, nnz, shared_flags != nullptr ? flag_mask : 0};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_i64(pixels, n_det * n_samp));
  args.push_back(lit_f64(weights, nnz * n_det * n_samp));
  args.push_back(lit_f64(signal, n_det * n_samp));
  args.push_back(lit_f64(det_scale, n_det));
  args.push_back(shared_flags != nullptr
                     ? lit_u8_as_i64(shared_flags, n_samp)
                     : xla::Literal(xla::Shape{n_samp}, xla::DType::kI64));
  args.push_back(lit_f64(zmap, n_pix * nnz));

  auto& jit = registered_jit("build_noise_weighted", graph);
  jit.set_donated_params({8});
  const std::string key = "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
                          std::to_string(s.n_samp) +
                          ";nnz=" + std::to_string(nnz) +
                          ";mask=" + std::to_string(s.flag_mask);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], zmap);
}

}  // namespace toast::kernels::jax
