// JAX port of noise_weight: one gather, one multiply, one masked store.
// The paper's smallest kernel - dispatch overhead dominates it.

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
} s;

std::vector<xla::Array> graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array det_weights = in[3], signal = in[4];
  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array w = gather(det_weights, idx.det);
  const Array updated = gather(signal, idx.detmaj) * w;
  return {scatter_set(signal, masked(idx.detmaj, idx.valid), updated)};
}

}  // namespace

void noise_weight(const double* det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp, double* signal,
                  core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(det_weights, n_det));
  args.push_back(lit_f64(signal, n_det * n_samp));

  auto& jit = registered_jit("noise_weight", graph);
  jit.set_donated_params({4});
  const std::string key = "maxlen=" + std::to_string(s.max_len) +
                          ";nsamp=" + std::to_string(s.n_samp);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], signal);
}

}  // namespace toast::kernels::jax
