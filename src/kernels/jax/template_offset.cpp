// JAX ports of the offset-template kernels.
//
// project_signal is where the JAX port shines in the paper (45x vs the
// OpenMP port's 19x): the functional amplitudes.at[idx].add(signal) has
// *sorted* update indices (samples of one step are contiguous), and the
// XLA lowering turns it into a conflict-free segmented reduction - "the
// XLA compiler finding a way to express this particular kernel in terms
// of linear algebra" (§4.2).

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  std::int64_t step_length = 1;
  std::int64_t n_amp_det = 0;
} s;

xla::Array amplitude_index(const PaddedIndex& idx) {
  using namespace xla;
  return add(mul(idx.det, constant_i64(s.n_amp_det)),
             div(idx.samp, constant_i64(s.step_length)));
}

std::vector<xla::Array> add_graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array amplitudes = in[3], signal = in[4];
  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array amp = gather(amplitudes, amplitude_index(idx));
  const Array updated = gather(signal, idx.detmaj) + amp;
  return {scatter_set(signal, masked(idx.detmaj, idx.valid), updated)};
}

std::vector<xla::Array> project_graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array signal = in[3], amplitudes = in[4];
  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array contrib = gather(signal, idx.detmaj);
  return {scatter_add(amplitudes, masked(amplitude_index(idx), idx.valid),
                      contrib)};
}

std::vector<xla::Array> precond_graph(const std::vector<xla::Array>& in) {
  return {xla::mul(in[0], in[1])};
}

}  // namespace

void template_offset_add_to_signal(std::int64_t step_length,
                                   const double* amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   double* signal, core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, step_length, n_amp_det};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(amplitudes, n_det * n_amp_det));
  args.push_back(lit_f64(signal, n_det * n_samp));

  auto& jit = registered_jit("template_offset_add_to_signal", add_graph);
  jit.set_donated_params({4});
  const std::string key = "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
                          std::to_string(s.n_samp) +
                          ";step=" + std::to_string(step_length) +
                          ";namp=" + std::to_string(n_amp_det);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], signal);
}

void template_offset_project_signal(
    std::int64_t step_length, const double* signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, double* amplitudes, std::int64_t n_amp_det,
    core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, step_length, n_amp_det};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(signal, n_det * n_samp));
  args.push_back(lit_f64(amplitudes, n_det * n_amp_det));

  auto& jit = registered_jit("template_offset_project_signal", project_graph);
  jit.set_donated_params({4});
  const std::string key = "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
                          std::to_string(s.n_samp) +
                          ";step=" + std::to_string(step_length) +
                          ";namp=" + std::to_string(n_amp_det);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], amplitudes);
}

void template_offset_apply_diag_precond(const double* offset_var,
                                        const double* amp_in,
                                        std::int64_t n_amp, double* amp_out,
                                        core::ExecContext& ctx) {
  if (n_amp == 0) {
    return;
  }
  std::vector<xla::Literal> args;
  args.push_back(lit_f64(amp_in, n_amp));
  args.push_back(lit_f64(offset_var, n_amp));

  auto& jit =
      registered_jit("template_offset_apply_diag_precond", precond_graph);
  const auto out = jit.call(ctx.jax(), args, "");
  store_f64(out[0], amp_out);
}

}  // namespace toast::kernels::jax
