// JAX port of scan_map: gathers from the sky map, one per non-zero, with
// flagged and padded lanes masked out of the final accumulate.

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  std::int64_t nnz = 0;
  double data_scale = 1.0;
} s;

std::vector<xla::Array> graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array sky_map = in[3], pixels = in[4], weights = in[5],
              signal = in[6];

  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array pix = gather(pixels, idx.detmaj);
  const Array scanned = logical_and(idx.valid, ge(pix, constant_i64(0)));
  // Clamp flagged pixels to 0 for the gather (value is masked out later).
  const Array safe_pix = maximum(pix, constant_i64(0));

  Array value = constant(0.0);
  for (std::int64_t k = 0; k < s.nnz; ++k) {
    const Array widx =
        add(mul(idx.detmaj, constant_i64(s.nnz)), constant_i64(k));
    const Array midx =
        add(mul(safe_pix, constant_i64(s.nnz)), constant_i64(k));
    value = value + gather(sky_map, midx) * gather(weights, widx);
  }
  const Array old = gather(signal, idx.detmaj);
  const Array updated = old + s.data_scale * value;
  return {scatter_set(signal, masked(idx.detmaj, scanned), updated)};
}

}  // namespace

void scan_map(const double* sky_map, std::int64_t n_pix, std::int64_t nnz,
              const std::int64_t* pixels, const double* weights,
              double data_scale, std::span<const core::Interval> intervals,
              std::int64_t n_det, std::int64_t n_samp, double* signal,
              core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, nnz, data_scale};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(sky_map, n_pix * nnz));
  args.push_back(lit_i64(pixels, n_det * n_samp));
  args.push_back(lit_f64(weights, nnz * n_det * n_samp));
  args.push_back(lit_f64(signal, n_det * n_samp));

  auto& jit = registered_jit("scan_map", graph);
  jit.set_donated_params({6});
  const std::string key = "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
                          std::to_string(s.n_samp) +
                          ";nnz=" + std::to_string(nnz) +
                          ";scale=" + std::to_string(data_scale);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], signal);
}

}  // namespace toast::kernels::jax
