// JAX port of pointing_detector: the quaternion product written as
// whole-array arithmetic over the padded (det x interval, max_len) index
// space, with flagged samples patched in by select.

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  std::int64_t flag_mask = 0;
} s;

std::vector<xla::Array> graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array bore = in[3], fp = in[4], flags = in[5], quats_out = in[6];

  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array four = constant_i64(4);
  const Array s4 = mul(idx.samp, four);
  const Array bx = gather(bore, s4);
  const Array by = gather(bore, add(s4, constant_i64(1)));
  const Array bz = gather(bore, add(s4, constant_i64(2)));
  const Array bw = gather(bore, add(s4, constant_i64(3)));
  const Array f4 = mul(idx.det, four);
  const Array fx = gather(fp, f4);
  const Array fy = gather(fp, add(f4, constant_i64(1)));
  const Array fz = gather(fp, add(f4, constant_i64(2)));
  const Array fw = gather(fp, add(f4, constant_i64(3)));

  // Hamilton product bore * fp (scalar last).
  const Array ox = bw * fx + bx * fw + by * fz - bz * fy;
  const Array oy = bw * fy - bx * fz + by * fw + bz * fx;
  const Array oz = bw * fz + bx * fy - by * fx + bz * fw;
  const Array ow = bw * fw - bx * fx - by * fy - bz * fz;

  const Array flag = gather(flags, idx.samp);
  const Array flagged =
      ne(bitwise_and(flag, constant_i64(s.flag_mask)), constant_i64(0));

  const Array om = mul(idx.detmaj, four);
  Array out = quats_out;
  out = scatter_set(out, masked(om, idx.valid), select(flagged, fx, ox));
  out = scatter_set(out, masked(add(om, constant_i64(1)), idx.valid),
                    select(flagged, fy, oy));
  out = scatter_set(out, masked(add(om, constant_i64(2)), idx.valid),
                    select(flagged, fz, oz));
  out = scatter_set(out, masked(add(om, constant_i64(3)), idx.valid),
                    select(flagged, fw, ow));
  return {out};
}

}  // namespace

void pointing_detector(const double* fp_quats, const double* boresight,
                       const std::uint8_t* shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp, double* quats,
                       core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, shared_flags != nullptr ? flag_mask : 0};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(boresight, 4 * n_samp));
  args.push_back(lit_f64(fp_quats, 4 * n_det));
  args.push_back(shared_flags != nullptr
                     ? lit_u8_as_i64(shared_flags, n_samp)
                     : xla::Literal(xla::Shape{n_samp}, xla::DType::kI64));
  args.push_back(lit_f64(quats, 4 * n_det * n_samp));

  auto& jit = registered_jit("pointing_detector", graph);
  jit.set_donated_params({6});
  const std::string key = "maxlen=" + std::to_string(s.max_len) +
                          ";nsamp=" + std::to_string(s.n_samp) +
                          ";mask=" + std::to_string(s.flag_mask);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], quats);
}

}  // namespace toast::kernels::jax
