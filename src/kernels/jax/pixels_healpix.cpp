// JAX port of pixels_healpix: the full HEALPix projection (RING and
// NESTED) expressed as array arithmetic.  There are no branches on a GPU
// tracer - every conditional becomes a select, so *both* the equatorial
// and the polar path are computed for every sample and the bit-interleave
// runs unconditionally.  The resulting fused kernel is enormous (register
// pressure!), which is precisely why the paper finds JAX's pixels_healpix
// far behind the OpenMP port (11x vs 41x, §4.2).

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  std::int64_t flag_mask = 0;
  std::int64_t nside = 0;
  bool nest = true;
} s;

// Morton spread of the low 32 bits (x -> even bit positions).
xla::Array spread_bits(xla::Array v) {
  using namespace xla;
  struct Step {
    std::int64_t shift;
    std::int64_t mask;
  };
  static constexpr Step kSteps[] = {
      {16, 0x0000FFFF0000FFFFLL}, {8, 0x00FF00FF00FF00FFLL},
      {4, 0x0F0F0F0F0F0F0F0FLL},  {2, 0x3333333333333333LL},
      {1, 0x5555555555555555LL},
  };
  Array r = bitwise_and(v, constant_i64(0x00000000FFFFFFFFLL));
  for (const auto& step : kSteps) {
    r = bitwise_and(bitwise_or(r, shift_left(r, constant_i64(step.shift))),
                    constant_i64(step.mask));
  }
  return r;
}

std::vector<xla::Array> graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array quats = in[3], flags = in[4], pixels_out = in[5];

  const std::int64_t nside = s.nside;
  int order = 0;
  while ((std::int64_t{1} << order) < nside) ++order;
  const std::int64_t npix = 12 * nside * nside;
  const std::int64_t ncap = 2 * nside * (nside - 1);

  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array four = constant_i64(4);
  const Array q4 = mul(idx.detmaj, four);
  const Array qx = gather(quats, q4);
  const Array qy = gather(quats, add(q4, constant_i64(1)));
  const Array qz = gather(quats, add(q4, constant_i64(2)));
  const Array qw = gather(quats, add(q4, constant_i64(3)));

  // Rotate the z axis by the detector quaternion.
  const Rotated dir = rotate_axis(qx, qy, qz, qw, 0.0, 0.0, 1.0);
  const Array x = dir.x;
  const Array y = dir.y;
  const Array z = dir.z;

  // Normalize and derive the spherical coordinates (matching vec2pix).
  const Array r = sqrt(x * x + y * y + z * z);
  const Array zn = z / r;
  const Array za = abs(zn);
  const Array phi = atan2(y, x);
  const Array tt = pmod(phi * (2.0 / 3.14159265358979323846), 4.0);
  const Array use_sth = gt(za, constant(0.99));
  const Array sth = sqrt(x * x + y * y) / r;
  const Array dnside = constant(static_cast<double>(nside));
  const Array tmp = select(
      use_sth, dnside * sth * sqrt(3.0 / (1.0 + za)),
      dnside * sqrt(3.0 * (1.0 - za)));

  // --- equatorial belt ----------------------------------------------------
  const Array temp1 = dnside * (0.5 + tt);
  const Array temp2 = dnside * zn * 0.75;
  const Array jp_e = to_i64(temp1 - temp2);
  const Array jm_e = to_i64(temp1 + temp2);

  // --- polar caps -----------------------------------------------------------
  const Array ntt = minimum(to_i64(tt), constant_i64(3));
  const Array tp = tt - to_f64(ntt);
  const Array jp_raw = to_i64(tp * tmp);
  const Array jm_raw = to_i64((1.0 - tp) * tmp);
  const Array north = ge(zn, constant(0.0));
  const Array equatorial = le(za, constant(2.0 / 3.0));

  Array pix;
  if (s.nest) {
    // Nested scheme: face + Morton-interleaved (ix, iy).
    const Array ord = constant_i64(order);
    const Array ifp = shift_right(jp_e, ord);
    const Array ifm = shift_right(jm_e, ord);
    const Array face_eq = select(
        eq(ifp, ifm), select(eq(ifp, constant_i64(4)), constant_i64(4),
                             add(ifp, constant_i64(4))),
        select(lt(ifp, ifm), ifp, add(ifm, constant_i64(8))));
    const Array nm1 = constant_i64(nside - 1);
    const Array ix_eq = bitwise_and(jm_e, nm1);
    const Array iy_eq = sub(nm1, bitwise_and(jp_e, nm1));

    const Array jp_p = minimum(jp_raw, nm1);
    const Array jm_p = minimum(jm_raw, nm1);
    const Array face_p = select(north, ntt, add(ntt, constant_i64(8)));
    const Array ix_p = select(north, sub(nm1, jm_p), jp_p);
    const Array iy_p = select(north, sub(nm1, jp_p), jm_p);

    const Array face = select(equatorial, face_eq, face_p);
    const Array ix = select(equatorial, ix_eq, ix_p);
    const Array iy = select(equatorial, iy_eq, iy_p);
    pix = add(mul(face, constant_i64(nside * nside)),
              bitwise_or(spread_bits(ix),
                         shift_left(spread_bits(iy), constant_i64(1))));
  } else {
    // Ring scheme.
    const Array nl4 = constant_i64(4 * nside);
    const Array ir_e =
        add(constant_i64(nside + 1), sub(jp_e, jm_e));
    const Array kshift = sub(constant_i64(1),
                             bitwise_and(ir_e, constant_i64(1)));
    Array ip_e = div(add(add(sub(add(jp_e, jm_e), constant_i64(nside)),
                             kshift),
                         constant_i64(1)),
                     constant_i64(2));
    // Positive modulo 4*nside.
    Array rem = mod(ip_e, nl4);
    ip_e = select(lt(rem, constant_i64(0)), add(rem, nl4), rem);
    const Array pix_eq =
        add(constant_i64(ncap),
            add(mul(sub(ir_e, constant_i64(1)), nl4), ip_e));

    const Array ir_p = add(add(jp_raw, jm_raw), constant_i64(1));
    const Array ip_raw = to_i64(tt * to_f64(ir_p));
    const Array four_ir = mul(constant_i64(4), ir_p);
    Array rem_p = mod(ip_raw, four_ir);
    const Array ip_p =
        select(lt(rem_p, constant_i64(0)), add(rem_p, four_ir), rem_p);
    const Array pix_north =
        add(mul(mul(constant_i64(2), ir_p), sub(ir_p, constant_i64(1))),
            ip_p);
    const Array pix_south =
        add(sub(constant_i64(npix),
                mul(mul(constant_i64(2), ir_p), add(ir_p, constant_i64(1)))),
            ip_p);
    const Array pix_polar = select(gt(zn, constant(0.0)), pix_north,
                                   pix_south);
    pix = select(equatorial, pix_eq, pix_polar);
  }

  // Flagged samples get pixel -1.
  const Array flag = gather(flags, idx.samp);
  const Array flagged =
      ne(bitwise_and(flag, constant_i64(s.flag_mask)), constant_i64(0));
  const Array value = select(flagged, constant_i64(-1), pix);

  return {scatter_set(pixels_out, masked(idx.detmaj, idx.valid), value)};
}

}  // namespace

void pixels_healpix(const double* quats, const std::uint8_t* shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::int64_t* pixels, core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, shared_flags != nullptr ? flag_mask : 0, nside,
       nest};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(quats, 4 * n_det * n_samp));
  args.push_back(shared_flags != nullptr
                     ? lit_u8_as_i64(shared_flags, n_samp)
                     : xla::Literal(xla::Shape{n_samp}, xla::DType::kI64));
  args.push_back(lit_i64(pixels, n_det * n_samp));

  auto& jit = registered_jit("pixels_healpix", graph);
  jit.set_donated_params({5});
  const std::string key =
      "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
      std::to_string(s.n_samp) + ";mask=" + std::to_string(s.flag_mask) +
      ";nside=" + std::to_string(nside) + ";nest=" + (nest ? "1" : "0");
  const auto out = jit.call(ctx.jax(), args, key);
  store_i64(out[0], pixels);
}

}  // namespace toast::kernels::jax
