#include "kernels/jax/support.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>

namespace toast::kernels::jax {

PaddedView make_padded_view(std::span<const core::Interval> intervals,
                            std::int64_t n_det) {
  PaddedView view;
  const auto n_view = static_cast<std::int64_t>(intervals.size());
  view.rows = n_det * n_view;
  for (const auto& ival : intervals) {
    view.max_len = std::max(view.max_len, ival.length());
  }
  std::vector<std::int64_t> det_ids(static_cast<std::size_t>(view.rows));
  std::vector<std::int64_t> starts(static_cast<std::size_t>(view.rows));
  std::vector<std::int64_t> lens(static_cast<std::size_t>(view.rows));
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t v = 0; v < n_view; ++v) {
      const auto r = static_cast<std::size_t>(det * n_view + v);
      det_ids[r] = det;
      starts[r] = intervals[static_cast<std::size_t>(v)].start;
      lens[r] = intervals[static_cast<std::size_t>(v)].length();
    }
  }
  view.det_ids = xla::Literal::from_i64(xla::Shape{view.rows}, det_ids);
  view.starts = xla::Literal::from_i64(xla::Shape{view.rows}, starts);
  view.lens = xla::Literal::from_i64(xla::Shape{view.rows}, lens);
  return view;
}

PaddedIndex padded_index(xla::Array det_ids, xla::Array starts,
                         xla::Array lens, std::int64_t max_len,
                         std::int64_t n_samp) {
  using namespace xla;
  const std::int64_t rows = det_ids.shape().dim(0);
  const Array cols = broadcast_row(iota(max_len), rows);
  const Array start = broadcast_col(starts, max_len);
  const Array len = broadcast_col(lens, max_len);
  const Array det = broadcast_col(det_ids, max_len);
  PaddedIndex idx;
  idx.samp = add(start, cols);
  idx.det = det;
  idx.detmaj = add(mul(det, constant_i64(n_samp)), idx.samp);
  idx.valid = lt(cols, len);
  return idx;
}

xla::Array masked(xla::Array idx, xla::Array valid) {
  return xla::select(valid, idx, xla::constant_i64(-1));
}

xla::Array pmod(xla::Array v, double m) {
  using namespace xla;
  const Array r = mod(v, constant(m));
  return select(lt(r, constant(0.0)), add(r, constant(m)), r);
}

Rotated rotate_axis(xla::Array qx, xla::Array qy, xla::Array qz,
                    xla::Array qw, double v0, double v1, double v2) {
  using namespace xla;
  // Mirrors kernels::quat_rotate term by term (associativity included) so
  // results are bit-identical across backends.
  const Array c0 = constant(v0), c1 = constant(v1), c2 = constant(v2);
  const Array tx = 2.0 * (qy * c2 - qz * c1);
  const Array ty = 2.0 * (qz * c0 - qx * c2);
  const Array tz = 2.0 * (qx * c1 - qy * c0);
  Rotated out;
  out.x = c0 + qw * tx + (qy * tz - qz * ty);
  out.y = c1 + qw * ty + (qz * tx - qx * tz);
  out.z = c2 + qw * tz + (qx * ty - qy * tx);
  return out;
}

namespace {
std::map<std::string, std::unique_ptr<xla::Jit>>& jit_registry() {
  static std::map<std::string, std::unique_ptr<xla::Jit>> registry;
  return registry;
}
}  // namespace

xla::Jit& registered_jit(const std::string& name, xla::TracedFn fn) {
  auto& registry = jit_registry();
  auto it = registry.find(name);
  if (it == registry.end()) {
    it = registry
             .emplace(name, std::make_unique<xla::Jit>(name, std::move(fn)))
             .first;
  }
  return *it->second;
}

void clear_jit_caches() {
  for (auto& [name, jit] : jit_registry()) {
    jit->clear_cache();
  }
}

xla::Literal lit_f64(const double* data, std::int64_t n) {
  return xla::Literal::from_f64(xla::Shape{n},
                                std::span<const double>(data, static_cast<std::size_t>(n)));
}

xla::Literal lit_i64(const std::int64_t* data, std::int64_t n) {
  return xla::Literal::from_i64(
      xla::Shape{n},
      std::span<const std::int64_t>(data, static_cast<std::size_t>(n)));
}

xla::Literal lit_u8_as_i64(const std::uint8_t* data, std::int64_t n) {
  xla::Literal l(xla::Shape{n}, xla::DType::kI64);
  for (std::int64_t i = 0; i < n; ++i) {
    l.i64()[static_cast<std::size_t>(i)] = data[i];
  }
  return l;
}

void store_f64(const xla::Literal& l, double* out) {
  std::memcpy(out, l.f64().data(), l.byte_size());
}

void store_i64(const xla::Literal& l, std::int64_t* out) {
  std::memcpy(out, l.i64().data(), l.byte_size());
}

}  // namespace toast::kernels::jax
