#pragma once

// Internal helpers shared by the operator wrappers.

#include <cstdint>
#include <string>

#include "core/accel_store.hpp"
#include "kernels/common.hpp"
#include "core/observation.hpp"

namespace toast::kernels::detail {

/// Resolve a field to the buffer the kernel should operate on: the device
/// shadow when staged, the host buffer otherwise.
template <typename T>
T* buf(core::Observation& ob, const std::string& name,
       core::AccelStore* accel) {
  core::Field& f = ob.field(name);
  if (accel != nullptr) {
    return accel->device_ptr<T>(f);
  }
  return reinterpret_cast<T*>(f.raw());
}

template <typename T>
const T* buf_opt(core::Observation& ob, const std::string& name,
                 core::AccelStore* accel) {
  if (!ob.has_field(name)) {
    return nullptr;
  }
  return buf<T>(ob, name, accel);
}

/// Flatten the focalplane detector quaternions into a field so they can
/// be staged to the device like any other buffer.
void ensure_fp_quats(core::Observation& ob);
/// Polarization efficiency per detector.
void ensure_pol_eff(core::Observation& ob);
/// Inverse-variance noise weight per detector (from the 1/f noise model).
void ensure_det_weights(core::Observation& ob);
/// Unit calibration scale per detector.
void ensure_det_scale(core::Observation& ob);

}  // namespace toast::kernels::detail
