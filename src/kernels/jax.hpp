#pragma once

// JAX ports of the kernels (paper §3.1.3): single-source array programs
// traced and JIT-compiled by the mini-XLA.  The ports follow the paper's
// recipe exactly:
//   - loops over (detector, interval, sample) become whole-array
//     operations over a [n_det * n_intervals, max_interval_length] padded
//     index space (static shapes!), with out-of-interval lanes doing
//     dummy work that is masked out of the final scatter;
//   - in-place updates become functional scatter_set / scatter_add
//     (x.at[idx].set / .add);
//   - static values (max interval length, nside, nnz, step length) are
//     JIT static arguments: a new trace is compiled per distinct value.
//
// The same code runs on the simulated GPU or on the XLA CPU backend,
// depending only on the ExecContext configuration - the single-source
// property the paper highlights.

#include <cstdint>
#include <span>

#include "core/context.hpp"
#include "core/types.hpp"

namespace toast::kernels::jax {

void pointing_detector(const double* fp_quats, const double* boresight,
                       const std::uint8_t* shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp, double* quats,
                       core::ExecContext& ctx);

void pixels_healpix(const double* quats, const std::uint8_t* shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::int64_t* pixels, core::ExecContext& ctx);

void stokes_weights_iqu(const double* quats, const double* hwp_angle,
                        const double* pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        double* weights, core::ExecContext& ctx);

void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      double* weights, core::ExecContext& ctx);

void scan_map(const double* sky_map, std::int64_t n_pix, std::int64_t nnz,
              const std::int64_t* pixels, const double* weights,
              double data_scale, std::span<const core::Interval> intervals,
              std::int64_t n_det, std::int64_t n_samp, double* signal,
              core::ExecContext& ctx);

void noise_weight(const double* det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp, double* signal,
                  core::ExecContext& ctx);

void build_noise_weighted(const std::int64_t* pixels, const double* weights,
                          std::int64_t n_pix, std::int64_t nnz,
                          const double* signal, const double* det_scale,
                          const std::uint8_t* shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          double* zmap, core::ExecContext& ctx);

void template_offset_add_to_signal(std::int64_t step_length,
                                   const double* amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   double* signal, core::ExecContext& ctx);

void template_offset_project_signal(
    std::int64_t step_length, const double* signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, double* amplitudes, std::int64_t n_amp_det,
    core::ExecContext& ctx);

void template_offset_apply_diag_precond(const double* offset_var,
                                        const double* amp_in,
                                        std::int64_t n_amp, double* amp_out,
                                        core::ExecContext& ctx);

/// Drop every kernel's compiled-executable cache (a fresh process starts
/// with cold JIT caches; the multi-process simulation calls this between
/// ranks so each rank pays its own compile time, as in the paper).
void clear_jit_caches();

}  // namespace toast::kernels::jax
