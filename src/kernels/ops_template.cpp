// Operator wrappers for the offset-template kernels.

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kAmplitudes;
using core::fields::kSignal;
using detail::buf;

namespace {

void ensure_amplitudes(core::Observation& ob,
                       const TemplateOffsetConfig& cfg) {
  if (!ob.has_field(kAmplitudes)) {
    ob.create_buffer(kAmplitudes, FieldType::kF64,
                     ob.n_detectors() * cfg.n_amp_det(ob.n_samples()),
                     /*scalable=*/true);
  }
}

void ensure_offset_var(core::Observation& ob,
                       const TemplateOffsetConfig& cfg) {
  if (ob.has_field(aux_fields::kOffsetVar)) {
    return;
  }
  const std::int64_t n_amp_det = cfg.n_amp_det(ob.n_samples());
  auto& f = ob.create_buffer(aux_fields::kOffsetVar, FieldType::kF64,
                             ob.n_detectors() * n_amp_det,
                             /*scalable=*/true);
  const auto& fp = ob.focalplane();
  auto out = f.f64();
  for (std::int64_t d = 0; d < ob.n_detectors(); ++d) {
    const double net =
        fp.net.empty() ? 1.0 : fp.net[static_cast<std::size_t>(d)];
    // Variance of one offset amplitude: step_length samples averaged.
    const double var = net * net * fp.sample_rate /
                       static_cast<double>(cfg.step_length);
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      out[static_cast<std::size_t>(d * n_amp_det + a)] = var;
    }
  }
}

}  // namespace

// --- TemplateOffsetAddOp ----------------------------------------------------

std::vector<std::string> TemplateOffsetAddOp::requires_fields() const {
  return {kAmplitudes, kSignal};
}

std::vector<std::string> TemplateOffsetAddOp::provides_fields() const {
  return {kSignal};
}

void TemplateOffsetAddOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

void TemplateOffsetAddOp::exec(core::Observation& ob, core::ExecContext& ctx,
                               core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_amp_det = cfg_.n_amp_det(n_samp);
  const double* amplitudes = buf<double>(ob, kAmplitudes, accel);
  double* signal = buf<double>(ob, kSignal, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::template_offset_add_to_signal(
          cfg_.step_length,
          {amplitudes, static_cast<std::size_t>(n_det * n_amp_det)},
          n_amp_det, ivals, n_det, n_samp,
          {signal, static_cast<std::size_t>(n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::template_offset_add_to_signal(cfg_.step_length, amplitudes,
                                         n_amp_det, ivals, n_det, n_samp,
                                         signal, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::template_offset_add_to_signal(cfg_.step_length, amplitudes,
                                         n_amp_det, ivals, n_det, n_samp,
                                         signal, ctx);
      break;
  }
}

// --- TemplateOffsetProjectOp ------------------------------------------------

std::vector<std::string> TemplateOffsetProjectOp::requires_fields() const {
  return {kSignal, kAmplitudes};
}

std::vector<std::string> TemplateOffsetProjectOp::provides_fields() const {
  return {kAmplitudes};
}

void TemplateOffsetProjectOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
}

void TemplateOffsetProjectOp::exec(core::Observation& ob,
                                   core::ExecContext& ctx,
                                   core::AccelStore* accel,
                                   Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_amp_det = cfg_.n_amp_det(n_samp);
  const double* signal = buf<double>(ob, kSignal, accel);
  double* amplitudes = buf<double>(ob, kAmplitudes, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::template_offset_project_signal(
          cfg_.step_length,
          {signal, static_cast<std::size_t>(n_det * n_samp)}, ivals, n_det,
          n_samp, {amplitudes, static_cast<std::size_t>(n_det * n_amp_det)},
          n_amp_det, ctx);
      break;
    case Backend::kOmpTarget:
      omp::template_offset_project_signal(cfg_.step_length, signal, ivals,
                                          n_det, n_samp, amplitudes,
                                          n_amp_det, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::template_offset_project_signal(cfg_.step_length, signal, ivals,
                                          n_det, n_samp, amplitudes,
                                          n_amp_det, ctx);
      break;
  }
}

// --- TemplateOffsetPrecondOp --------------------------------------------------

std::vector<std::string> TemplateOffsetPrecondOp::requires_fields() const {
  return {kAmplitudes, aux_fields::kOffsetVar};
}

std::vector<std::string> TemplateOffsetPrecondOp::provides_fields() const {
  return {kAmplitudes};
}

void TemplateOffsetPrecondOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
  ensure_offset_var(ob, cfg_);
}

void TemplateOffsetPrecondOp::exec(core::Observation& ob,
                                   core::ExecContext& ctx,
                                   core::AccelStore* accel,
                                   Backend backend) {
  const std::int64_t n_amp =
      ob.n_detectors() * cfg_.n_amp_det(ob.n_samples());
  const double* offset_var = buf<double>(ob, aux_fields::kOffsetVar, accel);
  double* amplitudes = buf<double>(ob, kAmplitudes, accel);

  switch (backend) {
    case Backend::kCpu:
      cpu::template_offset_apply_diag_precond(
          {offset_var, static_cast<std::size_t>(n_amp)},
          {amplitudes, static_cast<std::size_t>(n_amp)},
          {amplitudes, static_cast<std::size_t>(n_amp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::template_offset_apply_diag_precond(offset_var, amplitudes, n_amp,
                                              amplitudes, ctx,
                                              accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::template_offset_apply_diag_precond(offset_var, amplitudes, n_amp,
                                              amplitudes, ctx);
      break;
  }
}

}  // namespace toast::kernels
