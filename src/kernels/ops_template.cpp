// Operator wrappers for the offset-template kernels.  Backend selection
// goes through the tag-dispatch registry (backend/registry.hpp).

#include "backend/registry.hpp"
#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kAmplitudes;
using core::fields::kSignal;
using detail::buf;

namespace {

void ensure_amplitudes(core::Observation& ob,
                       const TemplateOffsetConfig& cfg) {
  if (!ob.has_field(kAmplitudes)) {
    ob.create_buffer(kAmplitudes, FieldType::kF64,
                     ob.n_detectors() * cfg.n_amp_det(ob.n_samples()),
                     /*scalable=*/true);
  }
}

void ensure_offset_var(core::Observation& ob,
                       const TemplateOffsetConfig& cfg) {
  if (ob.has_field(aux_fields::kOffsetVar)) {
    return;
  }
  const std::int64_t n_amp_det = cfg.n_amp_det(ob.n_samples());
  auto& f = ob.create_buffer(aux_fields::kOffsetVar, FieldType::kF64,
                             ob.n_detectors() * n_amp_det,
                             /*scalable=*/true);
  const auto& fp = ob.focalplane();
  auto out = f.f64();
  for (std::int64_t d = 0; d < ob.n_detectors(); ++d) {
    const double net =
        fp.net.empty() ? 1.0 : fp.net[static_cast<std::size_t>(d)];
    // Variance of one offset amplitude: step_length samples averaged.
    const double var = net * net * fp.sample_rate /
                       static_cast<double>(cfg.step_length);
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      out[static_cast<std::size_t>(d * n_amp_det + a)] = var;
    }
  }
}

}  // namespace

// --- TemplateOffsetAddOp ----------------------------------------------------

std::vector<std::string> TemplateOffsetAddOp::requires_fields() const {
  return {kAmplitudes, kSignal};
}

std::vector<std::string> TemplateOffsetAddOp::provides_fields() const {
  return {kSignal};
}

void TemplateOffsetAddOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

namespace {

struct OffsetAddArgs {
  std::int64_t step_length;
  const double* amplitudes;
  std::int64_t n_amp_det;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* signal;
  bool on_device;
};

const backend::OpRegistry<OffsetAddArgs>& offset_add_registry() {
  static const auto reg = [] {
    backend::OpRegistry<OffsetAddArgs> r("template_offset_add_to_signal");
    r.add<backend::cpu_tag>(
        [](const OffsetAddArgs& a, core::ExecContext& ctx) {
          cpu::template_offset_add_to_signal(
              a.step_length,
              {a.amplitudes,
               static_cast<std::size_t>(a.n_det * a.n_amp_det)},
              a.n_amp_det, a.ivals, a.n_det, a.n_samp,
              {a.signal, static_cast<std::size_t>(a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const OffsetAddArgs& a, core::ExecContext& ctx) {
          omp::template_offset_add_to_signal(a.step_length, a.amplitudes,
                                             a.n_amp_det, a.ivals, a.n_det,
                                             a.n_samp, a.signal, ctx,
                                             a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const OffsetAddArgs& a, core::ExecContext& ctx) {
          jax::template_offset_add_to_signal(a.step_length, a.amplitudes,
                                             a.n_amp_det, a.ivals, a.n_det,
                                             a.n_samp, a.signal, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void TemplateOffsetAddOp::exec(core::Observation& ob, core::ExecContext& ctx,
                               core::AccelStore* accel, Backend backend) {
  OffsetAddArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.n_amp_det = cfg_.n_amp_det(a.n_samp);
  a.step_length = cfg_.step_length;
  a.amplitudes = buf<double>(ob, kAmplitudes, accel);
  a.signal = buf<double>(ob, kSignal, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  offset_add_registry().invoke(backend, a, ctx);
}

// --- TemplateOffsetProjectOp ------------------------------------------------

std::vector<std::string> TemplateOffsetProjectOp::requires_fields() const {
  return {kSignal, kAmplitudes};
}

std::vector<std::string> TemplateOffsetProjectOp::provides_fields() const {
  return {kAmplitudes};
}

void TemplateOffsetProjectOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
}

namespace {

struct OffsetProjectArgs {
  std::int64_t step_length;
  const double* signal;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* amplitudes;
  std::int64_t n_amp_det;
  bool on_device;
};

const backend::OpRegistry<OffsetProjectArgs>& offset_project_registry() {
  static const auto reg = [] {
    backend::OpRegistry<OffsetProjectArgs> r(
        "template_offset_project_signal");
    r.add<backend::cpu_tag>(
        [](const OffsetProjectArgs& a, core::ExecContext& ctx) {
          cpu::template_offset_project_signal(
              a.step_length,
              {a.signal, static_cast<std::size_t>(a.n_det * a.n_samp)},
              a.ivals, a.n_det, a.n_samp,
              {a.amplitudes,
               static_cast<std::size_t>(a.n_det * a.n_amp_det)},
              a.n_amp_det, ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const OffsetProjectArgs& a, core::ExecContext& ctx) {
          omp::template_offset_project_signal(a.step_length, a.signal,
                                              a.ivals, a.n_det, a.n_samp,
                                              a.amplitudes, a.n_amp_det, ctx,
                                              a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const OffsetProjectArgs& a, core::ExecContext& ctx) {
          jax::template_offset_project_signal(a.step_length, a.signal,
                                              a.ivals, a.n_det, a.n_samp,
                                              a.amplitudes, a.n_amp_det,
                                              ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void TemplateOffsetProjectOp::exec(core::Observation& ob,
                                   core::ExecContext& ctx,
                                   core::AccelStore* accel,
                                   Backend backend) {
  OffsetProjectArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.n_amp_det = cfg_.n_amp_det(a.n_samp);
  a.step_length = cfg_.step_length;
  a.signal = buf<double>(ob, kSignal, accel);
  a.amplitudes = buf<double>(ob, kAmplitudes, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  offset_project_registry().invoke(backend, a, ctx);
}

// --- TemplateOffsetPrecondOp --------------------------------------------------

std::vector<std::string> TemplateOffsetPrecondOp::requires_fields() const {
  return {kAmplitudes, aux_fields::kOffsetVar};
}

std::vector<std::string> TemplateOffsetPrecondOp::provides_fields() const {
  return {kAmplitudes};
}

void TemplateOffsetPrecondOp::ensure_fields(core::Observation& ob) {
  ensure_amplitudes(ob, cfg_);
  ensure_offset_var(ob, cfg_);
}

namespace {

struct OffsetPrecondArgs {
  const double* offset_var;
  double* amplitudes;
  std::int64_t n_amp;
  bool on_device;
};

const backend::OpRegistry<OffsetPrecondArgs>& offset_precond_registry() {
  static const auto reg = [] {
    backend::OpRegistry<OffsetPrecondArgs> r(
        "template_offset_apply_diag_precond");
    r.add<backend::cpu_tag>(
        [](const OffsetPrecondArgs& a, core::ExecContext& ctx) {
          cpu::template_offset_apply_diag_precond(
              {a.offset_var, static_cast<std::size_t>(a.n_amp)},
              {a.amplitudes, static_cast<std::size_t>(a.n_amp)},
              {a.amplitudes, static_cast<std::size_t>(a.n_amp)}, ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const OffsetPrecondArgs& a, core::ExecContext& ctx) {
          omp::template_offset_apply_diag_precond(a.offset_var, a.amplitudes,
                                                  a.n_amp, a.amplitudes, ctx,
                                                  a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const OffsetPrecondArgs& a, core::ExecContext& ctx) {
          jax::template_offset_apply_diag_precond(a.offset_var, a.amplitudes,
                                                  a.n_amp, a.amplitudes,
                                                  ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void TemplateOffsetPrecondOp::exec(core::Observation& ob,
                                   core::ExecContext& ctx,
                                   core::AccelStore* accel,
                                   Backend backend) {
  OffsetPrecondArgs a;
  a.n_amp = ob.n_detectors() * cfg_.n_amp_det(ob.n_samples());
  a.offset_var = buf<double>(ob, aux_fields::kOffsetVar, accel);
  a.amplitudes = buf<double>(ob, kAmplitudes, accel);
  a.on_device = accel != nullptr;
  offset_precond_registry().invoke(backend, a, ctx);
}

}  // namespace toast::kernels
