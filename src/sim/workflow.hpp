#pragma once

// The paper's benchmark workflow: the satellite telescope simulation
// pipeline — simulate sky + noise, expand pointing, and run the iterative
// map-making section (scan / noise-weight / accumulate / offset-template),
// interleaved with stand-ins for the >30 kernels that had no GPU port.

#include <memory>
#include <vector>

#include "core/pipeline.hpp"

namespace toast::sim {

struct WorkflowConfig {
  std::int64_t nside = 64;
  std::int64_t nnz = 3;
  /// Map-maker solver iterations.
  int map_iterations = 5;
  /// Include the unported host-only kernel stand-ins (Amdahl ballast).
  bool include_unported = true;
  /// Template-offset baseline length in samples.
  std::int64_t offset_step_length = 256;
};

/// Build the full benchmark operator list (one pipeline).
core::Pipeline make_benchmark_pipeline(
    const WorkflowConfig& cfg,
    core::Pipeline::Staging staging = core::Pipeline::Staging::kPipelined);

/// Just the pointing expansion chain (pointing -> pixels -> weights).
core::Pipeline make_pointing_pipeline(const WorkflowConfig& cfg);

/// Sky synthesis + pointing expansion + map scanning in ONE pipeline, so
/// the intermediate pointing products stay on the device between the
/// operators (splitting this into separate pipelines would discard the
/// device-only "weights" intermediate).
core::Pipeline make_scan_pipeline(const WorkflowConfig& cfg);

/// Just one map-making iteration.
core::Pipeline make_mapmaking_pipeline(const WorkflowConfig& cfg);

}  // namespace toast::sim
