#pragma once

// Ground-based telescope simulation: the other observing mode TOAST
// serves (the paper's benchmark is the satellite workflow; CMB-S4 and the
// Simons Observatory it names are ground experiments).  A ground
// telescope scans back and forth in azimuth at fixed elevation while the
// sky rotates overhead; the natural scan intervals are the constant-
// velocity sweeps between turnarounds - which makes interval lengths vary
// with the scan geometry, stressing the same padding machinery as the
// satellite case.

#include <cstdint>

#include "core/observation.hpp"

namespace toast::sim {

struct GroundScanParams {
  double sample_rate = 37.0;   // Hz
  double site_latitude_deg = -23.0;  // Atacama-like
  double azimuth_center_deg = 180.0;
  double azimuth_throw_deg = 40.0;   // peak-to-peak sweep
  double elevation_deg = 50.0;
  double scan_rate_deg_s = 1.0;      // on-sky azimuth speed
  /// Fraction of each sweep spent in the (flagged) turnaround.
  double turnaround_fraction = 0.08;
};

/// Create a ground observation: boresight quaternions following the
/// azimuth scan as the sky rotates, HWP angle, times, shared flags (the
/// turnarounds are flagged), and one interval per constant-velocity
/// sweep.  Interval lengths vary because the turnaround points drift
/// with sky rotation.
core::Observation simulate_ground(const std::string& name,
                                  const core::Focalplane& fp,
                                  std::int64_t n_samples,
                                  const GroundScanParams& params = {},
                                  std::uint64_t seed = 0);

}  // namespace toast::sim
