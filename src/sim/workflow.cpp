#include "sim/workflow.hpp"

#include "kernels/operators.hpp"
#include "sim/satellite.hpp"

namespace toast::sim {

namespace {

using OpList = std::vector<std::shared_ptr<core::Operator>>;

void append_unported(OpList& ops, const char* phase) {
  // Stand-ins for the >30 unported kernels (calibration, flagging,
  // filtering, statistics...).  Costs are per detector-sample; the mix
  // below makes the unported section comparable to the ported kernels on
  // CPU, which (with the serial framework time) produces the paper's
  // ~3x Amdahl bound.
  ops.push_back(std::make_shared<kernels::UnportedHostOp>(
      std::string("unported_filter_") + phase, 48.0, 30.0));
  ops.push_back(std::make_shared<kernels::UnportedHostOp>(
      std::string("unported_stats_") + phase, 26.0, 18.0));
}

}  // namespace

core::Pipeline make_pointing_pipeline(const WorkflowConfig& cfg) {
  OpList ops;
  ops.push_back(std::make_shared<kernels::PointingDetectorOp>());
  ops.push_back(std::make_shared<kernels::PixelsHealpixOp>(cfg.nside, true));
  ops.push_back(std::make_shared<kernels::StokesWeightsIquOp>(true));
  return core::Pipeline(std::move(ops));
}

core::Pipeline make_scan_pipeline(const WorkflowConfig& cfg) {
  OpList ops;
  ops.push_back(std::make_shared<SynthSkyOp>(cfg.nside, cfg.nnz));
  ops.push_back(std::make_shared<kernels::PointingDetectorOp>());
  ops.push_back(std::make_shared<kernels::PixelsHealpixOp>(cfg.nside, true));
  ops.push_back(std::make_shared<kernels::StokesWeightsIquOp>(true));
  ops.push_back(std::make_shared<kernels::ScanMapOp>(cfg.nnz));
  return core::Pipeline(std::move(ops));
}

core::Pipeline make_mapmaking_pipeline(const WorkflowConfig& cfg) {
  OpList ops;
  kernels::TemplateOffsetConfig tpl{cfg.offset_step_length};
  ops.push_back(std::make_shared<kernels::ScanMapOp>(cfg.nnz));
  ops.push_back(std::make_shared<kernels::NoiseWeightOp>());
  ops.push_back(
      std::make_shared<kernels::BuildNoiseWeightedOp>(cfg.nside, cfg.nnz));
  ops.push_back(std::make_shared<kernels::TemplateOffsetProjectOp>(tpl));
  ops.push_back(std::make_shared<kernels::TemplateOffsetAddOp>(tpl));
  return core::Pipeline(std::move(ops));
}

core::Pipeline make_benchmark_pipeline(const WorkflowConfig& cfg,
                                       core::Pipeline::Staging staging) {
  OpList ops;
  kernels::TemplateOffsetConfig tpl{cfg.offset_step_length};

  // Simulation section (host only, as in TOAST at the time of the paper).
  ops.push_back(std::make_shared<SynthSkyOp>(cfg.nside, cfg.nnz));
  ops.push_back(std::make_shared<SimNoiseOp>());

  // Pointing expansion.
  ops.push_back(std::make_shared<kernels::PointingDetectorOp>());
  ops.push_back(std::make_shared<kernels::PixelsHealpixOp>(cfg.nside, true));
  ops.push_back(std::make_shared<kernels::StokesWeightsIquOp>(true));
  ops.push_back(std::make_shared<kernels::ScanMapOp>(cfg.nnz));
  if (cfg.include_unported) {
    append_unported(ops, "pre");
  }

  // Iterative map-making.
  for (int iter = 0; iter < cfg.map_iterations; ++iter) {
    ops.push_back(std::make_shared<kernels::NoiseWeightOp>());
    ops.push_back(
        std::make_shared<kernels::BuildNoiseWeightedOp>(cfg.nside, cfg.nnz));
    ops.push_back(std::make_shared<kernels::TemplateOffsetProjectOp>(tpl));
    ops.push_back(std::make_shared<kernels::TemplateOffsetAddOp>(tpl));
  }
  if (cfg.include_unported) {
    append_unported(ops, "post");
  }
  return core::Pipeline(std::move(ops), staging);
}

}  // namespace toast::sim
