#pragma once

// Satellite telescope simulation (the paper's benchmark workload, §4):
// generates the characteristic scanning motion of a space-based CMB
// telescope - a spin axis precessing about the anti-solar direction, with
// the boresight opening out from the spin axis - plus a hexagonal
// focalplane, scan intervals, a synthetic sky and 1/f detector noise.

#include <cstdint>
#include <vector>

#include "core/context.hpp"
#include "core/observation.hpp"
#include "core/operator.hpp"

namespace toast::sim {

/// Scanning geometry (defaults close to typical satellite designs).
struct ScanParams {
  double sample_rate = 37.0;       // Hz
  double spin_period = 600.0;      // seconds per spin revolution
  double prec_period = 3600.0;     // seconds per precession revolution
  double spin_angle_deg = 30.0;    // boresight opening from spin axis
  double prec_angle_deg = 45.0;    // spin axis opening from anti-solar
  /// Scan intervals: one per spin period, with gaps and length jitter so
  /// interval lengths vary (the padding stressor of both GPU ports).
  double interval_gap_fraction = 0.05;
  double interval_jitter_fraction = 0.3;
};

/// Build a hexagonal focalplane of `n_det` detectors with alternating
/// polarization angles and a 1/f noise model.
core::Focalplane hex_focalplane(std::int64_t n_det, double sample_rate,
                                double fov_deg = 10.0, double net = 50.0e-6,
                                double fknee = 0.05, double alpha = 1.0);

/// Create one observation: boresight quaternions, HWP angle, times, shared
/// flags (a small flagged fraction) and varying-length scan intervals.
core::Observation simulate_satellite(const std::string& name,
                                     const core::Focalplane& fp,
                                     std::int64_t n_samples,
                                     const ScanParams& params = {},
                                     std::uint64_t seed = 0);

/// Synthesize a smooth sky map (low-order harmonics in I, Q, U) for the
/// given nside; stored as the "sky_map" field, n_pix x nnz.
std::vector<double> synthetic_sky(std::int64_t nside, std::int64_t nnz,
                                  std::uint64_t seed = 42);

/// Operator: attach the synthetic sky to each observation.
class SynthSkyOp : public core::Operator {
 public:
  SynthSkyOp(std::int64_t nside, std::int64_t nnz = 3)
      : nside_(nside), nnz_(nnz) {}
  std::string name() const override { return "synth_sky"; }
  std::vector<std::string> provides_fields() const override {
    return {core::fields::kSkyMap};
  }
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  std::int64_t nside_;
  std::int64_t nnz_;
};

/// Operator: simulate 1/f + white detector noise into "signal" using the
/// counter-based RNG and the FFT substrate (host only, like TOAST's
/// sim_noise at the time of the paper).
class SimNoiseOp : public core::Operator {
 public:
  explicit SimNoiseOp(std::uint64_t seed = 1234567) : seed_(seed) {}
  std::string name() const override { return "sim_noise"; }
  std::vector<std::string> provides_fields() const override {
    return {core::fields::kSignal};
  }
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  std::uint64_t seed_;
};

}  // namespace toast::sim
