#include "sim/satellite.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <complex>

#include "fft/fft.hpp"
#include "healpix/healpix.hpp"
#include "qarray/qarray.hpp"
#include "rng/rng.hpp"

namespace toast::sim {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

core::Focalplane hex_focalplane(std::int64_t n_det, double sample_rate,
                                double fov_deg, double net, double fknee,
                                double alpha) {
  core::Focalplane fp;
  fp.sample_rate = sample_rate;
  const double fov = fov_deg * kDegToRad;
  // Hexagonal rings around the boresight center: ring r holds 6r pixels,
  // each pixel two orthogonal detectors.
  std::int64_t placed = 0;
  std::int64_t ring = 0;
  std::int64_t in_ring = 1;
  std::int64_t ring_pos = 0;
  while (placed < n_det) {
    double theta = 0.0;
    double phi = 0.0;
    if (ring > 0) {
      const std::int64_t rings_needed =
          static_cast<std::int64_t>(std::ceil(
              std::sqrt(static_cast<double>(n_det) / 2.0 / 3.0))) +
          1;
      theta = 0.5 * fov * static_cast<double>(ring) /
              static_cast<double>(std::max<std::int64_t>(1, rings_needed));
      phi = 2.0 * kPi * static_cast<double>(ring_pos) /
            static_cast<double>(in_ring);
    }
    // Two detectors per pixel position, polarization 90 degrees apart,
    // rings alternate by 45 degrees (standard pair layout).
    for (int pair = 0; pair < 2 && placed < n_det; ++pair) {
      const double psi =
          0.5 * kPi * pair + 0.25 * kPi * static_cast<double>(ring % 2);
      fp.quats.push_back(qarray::from_iso_angles(theta, phi, psi));
      fp.names.push_back("d" + std::to_string(placed));
      fp.pol_angles.push_back(psi);
      fp.pol_eff.push_back(0.95 + 0.05 * static_cast<double>(pair));
      fp.net.push_back(net * (1.0 + 0.1 * static_cast<double>(placed % 7)));
      fp.fknee.push_back(fknee * (1.0 + 0.2 * static_cast<double>(placed % 5)));
      fp.fmin.push_back(1.0e-5);
      fp.alpha.push_back(alpha);
      ++placed;
    }
    ++ring_pos;
    if (ring_pos >= in_ring) {
      ++ring;
      in_ring = 6 * ring;
      ring_pos = 0;
    }
  }
  return fp;
}

core::Observation simulate_satellite(const std::string& name,
                                     const core::Focalplane& fp,
                                     std::int64_t n_samples,
                                     const ScanParams& params,
                                     std::uint64_t seed) {
  core::Observation ob(name, fp, n_samples);

  auto& times = ob.create_shared(core::fields::kTimes, core::FieldType::kF64);
  auto& bore =
      ob.create_shared(core::fields::kBoresight, core::FieldType::kF64, 4);
  auto& hwp =
      ob.create_shared(core::fields::kHwpAngle, core::FieldType::kF64);
  auto& flags =
      ob.create_shared(core::fields::kSharedFlags, core::FieldType::kU8);

  const double dt = 1.0 / params.sample_rate;
  const double spin_rate = 2.0 * kPi / params.spin_period;
  const double prec_rate = 2.0 * kPi / params.prec_period;
  const double hwp_rate = 2.0 * kPi * 1.0;  // 1 Hz continuous rotation
  const qarray::Vec3 zaxis{0.0, 0.0, 1.0};
  const qarray::Vec3 yaxis{0.0, 1.0, 0.0};

  auto t_span = times.f64();
  auto b_span = bore.f64();
  auto h_span = hwp.f64();
  for (std::int64_t s = 0; s < n_samples; ++s) {
    const double t = static_cast<double>(s) * dt;
    t_span[static_cast<std::size_t>(s)] = t;
    // Anti-solar direction advances slowly along the ecliptic (1 year);
    // the spin axis precesses about it; the boresight spins about the
    // spin axis.
    const double solar = 2.0 * kPi * t / (365.25 * 86400.0);
    // The anti-solar direction lies in the ecliptic plane: tilt the whole
    // assembly so the precession axis sweeps the equator over a year
    // (this is what gives satellite missions full-sky coverage).
    const auto q_solar = qarray::mult(
        qarray::from_axisangle(zaxis, solar),
        qarray::from_axisangle(yaxis, 0.5 * kPi));
    const auto q_prec_tilt =
        qarray::from_axisangle(yaxis, params.prec_angle_deg * kDegToRad);
    const auto q_prec_spin =
        qarray::from_axisangle(zaxis, prec_rate * t);
    const auto q_spin_tilt =
        qarray::from_axisangle(yaxis, params.spin_angle_deg * kDegToRad);
    const auto q_spin = qarray::from_axisangle(zaxis, spin_rate * t);
    auto q = qarray::mult(q_solar, qarray::mult(q_prec_spin, q_prec_tilt));
    q = qarray::mult(q, qarray::mult(q_spin, q_spin_tilt));
    q = qarray::normalize(q);
    for (int c = 0; c < 4; ++c) {
      b_span[static_cast<std::size_t>(4 * s + c)] =
          q[static_cast<std::size_t>(c)];
    }
    h_span[static_cast<std::size_t>(s)] = std::fmod(hwp_rate * t, 2.0 * kPi);
  }

  // Flag a small fraction of samples (glitches / repointing).
  auto f_span = flags.u8();
  rng::RngStream flag_stream({seed, 0xF1A6}, {0, 0});
  std::vector<double> u(static_cast<std::size_t>(n_samples));
  flag_stream.uniform_01(u);
  for (std::int64_t s = 0; s < n_samples; ++s) {
    if (u[static_cast<std::size_t>(s)] < 0.01) {
      f_span[static_cast<std::size_t>(s)] = 1;
    }
  }

  // Scan intervals: nominally one per spin period, with jittered lengths
  // and small gaps so the interval lengths genuinely vary.
  const auto nominal = static_cast<std::int64_t>(
      params.spin_period * params.sample_rate);
  rng::RngStream jitter_stream({seed, 0x17E2}, {0, 0});
  std::int64_t start = 0;
  while (start < n_samples) {
    std::array<double, 2> j{};
    jitter_stream.uniform_01(j);
    const auto len = std::max<std::int64_t>(
        16, static_cast<std::int64_t>(
                static_cast<double>(nominal) *
                (1.0 - params.interval_jitter_fraction * j[0])));
    const auto gap = static_cast<std::int64_t>(
        static_cast<double>(nominal) * params.interval_gap_fraction * j[1]);
    const std::int64_t stop = std::min(n_samples, start + len);
    ob.intervals().push_back({start, stop});
    start = stop + gap;
  }
  return ob;
}

std::vector<double> synthetic_sky(std::int64_t nside, std::int64_t nnz,
                                  std::uint64_t seed) {
  healpix::Healpix hp(nside);
  std::vector<double> map(
      static_cast<std::size_t>(hp.npix() * nnz), 0.0);
  // Low-order harmonic coefficients from the RNG.
  rng::RngStream stream({seed, 0x5C1}, {0, 0});
  std::vector<double> coeff(24);
  stream.gaussian(coeff);
  for (std::int64_t p = 0; p < hp.npix(); ++p) {
    double theta = 0.0, phi = 0.0;
    hp.pix2ang_ring(p, theta, phi);
    const double x = std::sin(theta) * std::cos(phi);
    const double y = std::sin(theta) * std::sin(phi);
    const double z = std::cos(theta);
    // Dipole + quadrupole-ish smooth pattern per component.
    for (std::int64_t k = 0; k < nnz; ++k) {
      const std::size_t c = static_cast<std::size_t>(8 * (k % 3));
      const double value = coeff[c] * x + coeff[c + 1] * y +
                           coeff[c + 2] * z + coeff[c + 3] * x * y +
                           coeff[c + 4] * y * z + coeff[c + 5] * x * z +
                           coeff[c + 6] * (z * z - 1.0 / 3.0) +
                           0.1 * coeff[c + 7];
      const std::int64_t pn = hp.ring2nest(p);
      map[static_cast<std::size_t>(pn * nnz + k)] =
          1.0e-5 * value;  // Kelvin-ish CMB scale
    }
  }
  return map;
}

void SynthSkyOp::exec(core::Observation& ob, core::ExecContext& ctx,
                      core::AccelStore* accel, core::Backend backend) {
  (void)accel;
  (void)backend;
  if (!ob.has_field(core::fields::kSkyMap)) {
    const auto map = synthetic_sky(nside_, nnz_);
    auto& f = ob.create_buffer(core::fields::kSkyMap, core::FieldType::kF64,
                               static_cast<std::int64_t>(map.size()));
    std::copy(map.begin(), map.end(), f.f64().begin());
  }
  // Host-side generation cost: map domain, so it scales with the map
  // resolution ratio, not the sample ratio.
  accel::WorkEstimate w;
  const double npix = static_cast<double>(12 * nside_ * nside_);
  w.flops = 40.0 * npix;
  w.bytes_written = 8.0 * npix * static_cast<double>(nnz_);
  w.launches = 1.0;
  w.parallel_items = npix;
  ctx.charge_host_kernel_raw(name(), w.scaled(ctx.config().map_scale));
}

void SimNoiseOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(core::fields::kSignal)) {
    ob.create_detdata(core::fields::kSignal, core::FieldType::kF64, 1);
  }
}

void SimNoiseOp::exec(core::Observation& ob, core::ExecContext& ctx,
                      core::AccelStore* accel, core::Backend backend) {
  (void)accel;
  (void)backend;
  const auto& fp = ob.focalplane();
  const std::int64_t n_samp = ob.n_samples();
  const std::size_t n_fft = fft::next_pow2(static_cast<std::size_t>(n_samp));
  const double df =
      fp.sample_rate / static_cast<double>(n_fft);

  for (std::int64_t det = 0; det < ob.n_detectors(); ++det) {
    const auto d = static_cast<std::size_t>(det);
    // Shape a Gaussian random spectrum by the detector PSD:
    //   P(f) = NET^2 * (1 + (f_knee / f)^alpha), f >= f_min.
    std::vector<std::complex<double>> spectrum(n_fft / 2 + 1);
    std::vector<double> re(n_fft / 2 + 1), im(n_fft / 2 + 1);
    rng::random_gaussian(seed_, static_cast<std::uint64_t>(det), 0, 0, re);
    rng::random_gaussian(seed_, static_cast<std::uint64_t>(det), 1, 0, im);
    for (std::size_t bin = 0; bin < spectrum.size(); ++bin) {
      const double f = std::max(df * static_cast<double>(bin), fp.fmin[d]);
      const double psd =
          fp.net[d] * fp.net[d] *
          (1.0 + std::pow(fp.fknee[d] / f, fp.alpha[d]));
      const double amp = std::sqrt(0.5 * psd * fp.sample_rate *
                                   static_cast<double>(n_fft)) /
                         std::sqrt(static_cast<double>(n_fft));
      spectrum[bin] = {amp * re[bin], amp * im[bin]};
    }
    spectrum[0] = {0.0, 0.0};  // zero mean
    spectrum.back() = {spectrum.back().real(), 0.0};
    const auto noise = fft::irfft(spectrum, n_fft);
    auto signal = ob.det_f64(core::fields::kSignal, det);
    for (std::int64_t s = 0; s < n_samp; ++s) {
      signal[static_cast<std::size_t>(s)] +=
          noise[static_cast<std::size_t>(s)] *
          std::sqrt(static_cast<double>(n_fft));
    }
  }

  // Host cost: FFT-dominated (TOAST's sim_noise ran on CPU).
  accel::WorkEstimate w;
  const double n = static_cast<double>(ob.n_detectors()) *
                   static_cast<double>(n_fft);
  w.flops = 5.0 * n * std::log2(static_cast<double>(n_fft)) + 30.0 * n;
  w.bytes_read = 16.0 * n;
  w.bytes_written = 16.0 * n;
  w.launches = 1.0;
  w.parallel_items = static_cast<double>(ob.n_detectors());
  w.cpu_vector_eff = 0.60;
  ctx.charge_host_kernel(name(), w);
}

}  // namespace toast::sim
