#include "sim/ground.hpp"

#include <cmath>
#include <numbers>

#include "qarray/qarray.hpp"
#include "rng/rng.hpp"

namespace toast::sim {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kEarthRotation = 2.0 * std::numbers::pi / 86164.0;  // rad/s
}  // namespace

core::Observation simulate_ground(const std::string& name,
                                  const core::Focalplane& fp,
                                  std::int64_t n_samples,
                                  const GroundScanParams& params,
                                  std::uint64_t seed) {
  core::Observation ob(name, fp, n_samples);

  auto& times = ob.create_shared(core::fields::kTimes, core::FieldType::kF64);
  auto& bore =
      ob.create_shared(core::fields::kBoresight, core::FieldType::kF64, 4);
  auto& hwp =
      ob.create_shared(core::fields::kHwpAngle, core::FieldType::kF64);
  auto& flags =
      ob.create_shared(core::fields::kSharedFlags, core::FieldType::kU8);

  const double dt = 1.0 / params.sample_rate;
  const double az0 = params.azimuth_center_deg * kDegToRad;
  const double half_throw = 0.5 * params.azimuth_throw_deg * kDegToRad;
  const double el = params.elevation_deg * kDegToRad;
  const double lat = params.site_latitude_deg * kDegToRad;
  const double az_rate = params.scan_rate_deg_s * kDegToRad;
  const double sweep_seconds = 2.0 * half_throw / az_rate;

  // Per-sweep turnaround jitter so interval lengths genuinely vary.
  rng::RngStream jitter({seed, 0x6E0D}, {0, 0});

  const qarray::Vec3 yaxis{0.0, 1.0, 0.0};
  const qarray::Vec3 zaxis{0.0, 0.0, 1.0};
  // Horizon frame -> celestial frame: tilt by the co-latitude.
  const auto q_site = qarray::from_axisangle(yaxis, kPi / 2.0 - lat);

  auto t_span = times.f64();
  auto b_span = bore.f64();
  auto h_span = hwp.f64();
  auto f_span = flags.u8();

  std::int64_t sweep_index = -1;
  double sweep_turnaround = params.turnaround_fraction;
  std::int64_t interval_start = -1;

  for (std::int64_t s = 0; s < n_samples; ++s) {
    const double t = static_cast<double>(s) * dt;
    t_span[static_cast<std::size_t>(s)] = t;

    // Triangle wave in azimuth.
    const double phase = std::fmod(t, 2.0 * sweep_seconds) / sweep_seconds;
    const double tri = phase < 1.0 ? 2.0 * phase - 1.0 : 3.0 - 2.0 * phase;
    const double az = az0 + half_throw * tri;

    // New sweep?  Draw its turnaround fraction.
    const auto this_sweep = static_cast<std::int64_t>(t / sweep_seconds);
    if (this_sweep != sweep_index) {
      sweep_index = this_sweep;
      std::array<double, 2> u{};
      jitter.uniform_01(u);
      sweep_turnaround =
          params.turnaround_fraction * (0.5 + 1.5 * u[0]);
    }
    // Within-sweep position in [0,1); turnaround at both ends.
    const double sweep_pos = std::fmod(t, sweep_seconds) / sweep_seconds;
    const bool turning = sweep_pos < 0.5 * sweep_turnaround ||
                         sweep_pos > 1.0 - 0.5 * sweep_turnaround;
    f_span[static_cast<std::size_t>(s)] = turning ? 1 : 0;

    // Interval bookkeeping: one interval per unflagged stretch.
    if (!turning && interval_start < 0) {
      interval_start = s;
    }
    if ((turning || s == n_samples - 1) && interval_start >= 0) {
      ob.intervals().push_back({interval_start, turning ? s : s + 1});
      interval_start = -1;
    }

    // Horizon pointing: R_z(-az) * R_y(pi/2 - el) takes z to (az, el).
    auto q_h = qarray::mult(qarray::from_axisangle(zaxis, -az),
                            qarray::from_axisangle(yaxis, kPi / 2.0 - el));
    // Sky rotation and site orientation.
    const auto q_lst =
        qarray::from_axisangle(zaxis, kEarthRotation * t);
    auto q = qarray::mult(q_lst, qarray::mult(q_site, q_h));
    q = qarray::normalize(q);
    for (int c = 0; c < 4; ++c) {
      b_span[static_cast<std::size_t>(4 * s + c)] =
          q[static_cast<std::size_t>(c)];
    }
    h_span[static_cast<std::size_t>(s)] =
        std::fmod(2.0 * kPi * 2.0 * t, 2.0 * kPi);  // 2 Hz HWP
  }
  return ob;
}

}  // namespace toast::sim
