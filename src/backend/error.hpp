#pragma once

// Structured dispatch failure: a kernel was requested for a backend with
// no registered implementation anywhere along its tag base chain.

#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace toast::backend {

class UnknownKernelError : public std::runtime_error {
 public:
  UnknownKernelError(std::string kernel, core::Backend backend);

  const std::string& kernel() const { return kernel_; }
  core::Backend backend() const { return backend_; }

 private:
  std::string kernel_;
  core::Backend backend_;
};

}  // namespace toast::backend
