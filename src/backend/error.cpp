#include "backend/error.hpp"

#include "backend/manifest.hpp"

namespace toast::backend {

namespace {

// Built with append() rather than chained operator+: GCC 12's -O3
// -Wrestrict mis-analyzes the temporary chain in libstdc++ and the
// werror CI leg rejects it.
std::string format_message(const std::string& kernel, core::Backend b) {
  const std::size_t idx = index_of(b);
  std::string msg = "backend registry: kernel '";
  msg.append(kernel);
  msg.append("' has no implementation for backend '");
  if (idx == npos) {
    msg.append("<backend ");
    msg.append(std::to_string(static_cast<int>(b)));
    msg.append(" not in the manifest>");
  } else {
    msg.append(name_of(idx));
  }
  msg.append("' (no registration on the tag or its base chain)");
  return msg;
}

}  // namespace

UnknownKernelError::UnknownKernelError(std::string kernel,
                                       core::Backend backend)
    : std::runtime_error(format_message(kernel, backend)),
      kernel_(std::move(kernel)),
      backend_(backend) {}

}  // namespace toast::backend
