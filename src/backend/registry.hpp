#pragma once

// Per-kernel backend registry (the tag-dispatch replacement for the old
// three-way `switch (backend)` in every operator).  Each kernel owns one
// OpRegistry<Args> where Args is the kernel's resolved-argument bundle;
// implementations register against a manifest tag and dispatch resolves
// the runtime enum to a slot, walking the tag base chain when a backend
// has no registration of its own:
//
//   static const auto reg = [] {
//     OpRegistry<ScanMapArgs> r("scan_map");
//     r.add<cpu_tag>([](const ScanMapArgs& a, core::ExecContext& ctx) {...});
//     r.add<omptarget_tag>(...);
//     r.add<jax_tag>(...);      // also serves jax-cpu and jax-compiled
//     return r;
//   }();
//   reg.invoke(backend, args, ctx);
//
// A jax-compiled dispatch additionally flips the context's xla runtime
// into compiled-executor mode for the duration of the call, so per-kernel
// backend overrides pick the executor per call, not per process.

#include <array>
#include <functional>
#include <string>
#include <utility>

#include "backend/error.hpp"
#include "backend/manifest.hpp"
#include "core/context.hpp"

namespace toast::backend {

/// Pins the xla runtime's executor mode for one dispatch, restoring the
/// previous mode on scope exit.
class ScopedExecutor {
 public:
  ScopedExecutor(xla::Runtime& rt, xla::ExecMode mode)
      : rt_(rt), previous_(rt.executor()) {
    rt_.set_executor(mode);
  }
  ~ScopedExecutor() { rt_.set_executor(previous_); }
  ScopedExecutor(const ScopedExecutor&) = delete;
  ScopedExecutor& operator=(const ScopedExecutor&) = delete;

 private:
  xla::Runtime& rt_;
  xla::ExecMode previous_;
};

template <typename Args>
class OpRegistry {
 public:
  using Fn = std::function<void(const Args&, core::ExecContext&)>;

  explicit OpRegistry(std::string kernel) : kernel_(std::move(kernel)) {}

  /// Register the implementation for `Tag`'s slot.  Derived tags without
  /// a registration of their own inherit this one through the base chain.
  template <typename Tag>
  void add(Fn fn) {
    slots_[backend_index<Tag>()] = std::move(fn);
  }

  const std::string& kernel() const { return kernel_; }

  /// True when `b` resolves to a registration (directly or via a base).
  bool has(core::Backend b) const { return resolve(b) != npos; }

  void invoke(core::Backend b, const Args& args,
              core::ExecContext& ctx) const {
    const std::size_t slot = resolve(b);
    if (slot == npos) {
      throw UnknownKernelError(kernel_, b);
    }
    if (b == core::Backend::kJax || b == core::Backend::kJaxCpu ||
        b == core::Backend::kJaxCompiled) {
      const ScopedExecutor mode(ctx.jax(),
                                b == core::Backend::kJaxCompiled
                                    ? xla::ExecMode::kCompiled
                                    : xla::ExecMode::kInterpreted);
      slots_[slot](args, ctx);
      return;
    }
    slots_[slot](args, ctx);
  }

 private:
  /// Manifest slot whose registration serves backend `b`: the tag's own
  /// slot if filled, else the nearest registered base tag; npos if the
  /// whole chain is empty or `b` is not in the manifest.
  std::size_t resolve(core::Backend b) const {
    std::size_t idx = index_of(b);
    if (idx == npos) {
      return npos;
    }
    for (;;) {
      if (slots_[idx]) {
        return idx;
      }
      const std::size_t up = base_index(idx);
      if (up == idx) {
        return npos;
      }
      idx = up;
    }
  }

  std::string kernel_;
  std::array<Fn, backend_count> slots_;
};

}  // namespace toast::backend
