#pragma once

// Backend tag types (ROADMAP: tag-dispatch backend manifest, the
// backend_manifest.hpp idiom).  Each kernel implementation family is a
// tag type carrying its core::Backend id and display name; tag
// *inheritance* expresses implementation sharing: a backend whose tag
// derives from another falls back to the base backend's registered
// kernel when it has no specialization of its own (jax-cpu and
// jax-compiled both run the traced jax kernels — only the executor
// underneath differs).

#include "core/types.hpp"

namespace toast::backend {

/// Sentinel "no base backend" marker for root tags.
struct no_base_tag {};

/// Original OpenMP CPU kernels (the paper's baseline).
struct cpu_tag {
  using base = no_base_tag;
  static constexpr core::Backend id = core::Backend::kCpu;
  static constexpr const char* name = "cpu";
};

/// OpenMP Target Offload port.
struct omptarget_tag {
  using base = no_base_tag;
  static constexpr core::Backend id = core::Backend::kOmpTarget;
  static constexpr const char* name = "omp-target";
};

/// JAX port, GPU backend, interpreted mini-XLA executor.
struct jax_tag {
  using base = no_base_tag;
  static constexpr core::Backend id = core::Backend::kJax;
  static constexpr const char* name = "jax";
};

/// JAX port forced onto its CPU backend (paper §4.2).  Inherits the jax
/// kernel registrations.
struct jax_cpu_tag : jax_tag {
  using base = jax_tag;
  static constexpr core::Backend id = core::Backend::kJaxCpu;
  static constexpr const char* name = "jax-cpu";
};

/// JAX port on the compiled fused-loop executor (one specialized loop
/// per fusion group instead of per-op interpretation).  Inherits the jax
/// kernel registrations; the registry switches the xla runtime into
/// compiled mode around the call.
struct jax_compiled_tag : jax_tag {
  using base = jax_tag;
  static constexpr core::Backend id = core::Backend::kJaxCompiled;
  static constexpr const char* name = "jax-compiled";
};

}  // namespace toast::backend
