#pragma once

// The backend manifest: the single compile-time list of every kernel
// backend the build knows about.  Adding a backend means adding a tag to
// `available_backends`; the registry slots, runtime-enum mapping, base
// chains and display names all follow from the tuple.

#include <cstddef>
#include <tuple>
#include <type_traits>

#include "backend/tags.hpp"

namespace toast::backend {

using available_backends =
    std::tuple<cpu_tag, omptarget_tag, jax_tag, jax_cpu_tag,
               jax_compiled_tag>;

inline constexpr std::size_t backend_count =
    std::tuple_size_v<available_backends>;

/// Sentinel for "not in the manifest".
inline constexpr std::size_t npos = backend_count;

namespace detail {

template <typename Tag, std::size_t... Is>
constexpr std::size_t index_of_tag(std::index_sequence<Is...>) {
  std::size_t found = npos;
  ((std::is_same_v<Tag, std::tuple_element_t<Is, available_backends>>
        ? (found = Is, 0)
        : 0),
   ...);
  return found;
}

template <std::size_t... Is>
constexpr std::size_t index_of_id(core::Backend b,
                                  std::index_sequence<Is...>) {
  std::size_t found = npos;
  ((std::tuple_element_t<Is, available_backends>::id == b ? (found = Is, 0)
                                                          : 0),
   ...);
  return found;
}

}  // namespace detail

/// Compile-time slot of a tag in the manifest.
template <typename Tag>
constexpr std::size_t backend_index() {
  constexpr std::size_t idx = detail::index_of_tag<Tag>(
      std::make_index_sequence<backend_count>{});
  static_assert(idx != npos, "tag is not in available_backends");
  return idx;
}

/// Runtime slot of a core::Backend enum value; npos when the enum value
/// has no tag in the manifest (e.g. a corrupted dispatch table).
constexpr std::size_t index_of(core::Backend b) {
  return detail::index_of_id(b, std::make_index_sequence<backend_count>{});
}

/// Runtime enum of a manifest slot; core::Backend::kCpu when the index
/// is out of range (slot 0 is the root backend by construction).
constexpr core::Backend id_of(std::size_t index) {
  core::Backend id = core::Backend::kCpu;
  std::size_t i = 0;
  std::apply(
      [&](auto... tags) {
        (((i++ == index) ? (id = decltype(tags)::id, 0) : 0), ...);
      },
      available_backends{});
  return id;
}

/// Display name of a manifest slot ("cpu", "omp-target", ...).
constexpr const char* name_of(std::size_t index) {
  const char* name = "unknown";
  std::size_t i = 0;
  std::apply(
      [&](auto... tags) {
        (((i++ == index) ? (name = decltype(tags)::name, 0) : 0), ...);
      },
      available_backends{});
  return name;
}

/// Slot of a tag's base tag, or the slot itself for root tags.  The
/// registry walks this chain when a backend has no registration of its
/// own (jax-cpu -> jax).
constexpr std::size_t base_index(std::size_t index) {
  std::size_t base = index;
  std::size_t i = 0;
  std::apply(
      [&](auto... tags) {
        (((i++ == index)
              ? (base = [] {
                  using Base = typename decltype(tags)::base;
                  if constexpr (std::is_same_v<Base, no_base_tag>) {
                    return npos;
                  } else {
                    return backend_index<Base>();
                  }
                }(),
                 0)
              : 0),
         ...);
      },
      available_backends{});
  return base == npos ? index : base;
}

/// Invoke `f` with the tag instance for runtime backend `b`.  Returns
/// false (without calling `f`) when `b` is not in the manifest.
template <typename F>
constexpr bool with_backend(core::Backend b, F&& f) {
  bool called = false;
  std::apply(
      [&](auto... tags) {
        (((decltype(tags)::id == b && !called) ? (f(tags), called = true)
                                               : false),
         ...);
      },
      available_backends{});
  return called;
}

}  // namespace toast::backend
