#pragma once

// Calibration constants for the job-level performance and memory models.
//
// These encode the *framework-level* facts of the paper's benchmark that
// are not derivable from kernel structure: how much serial Python-side
// work surrounds the kernels (the Amdahl bound of ~3x the paper states),
// how much CPU work the >30 unported kernels represent, and the memory
// behaviour of each backend's allocator (which produces Figure 4's OOM
// pattern: JAX cannot run the medium problem with 1 or 64 processes, the
// OpenMP port cannot with 64, the CPU baseline runs everywhere).

namespace toast::bench_model {

/// Host-side framework costs, per detector-sample at paper scale.
struct FrameworkModel {
  /// Serial (single-thread, per process) Python/framework time: data
  /// distribution, bookkeeping, I/O.  Parallelized only by adding
  /// processes.
  double serial_seconds_per_sample = 1.6e-8;
  /// Number of map-maker solver iterations in the benchmark workflow
  /// (template_offset / scan_map / build_noise_weighted run once per
  /// iteration).
  int map_iterations = 5;
};

/// The memory model (see DESIGN.md §5).  "Staged" bytes are the fields
/// the GPU section of the pipeline keeps resident per observation.
struct MemoryModel {
  /// Fraction of a rank's timestream bytes staged per observation at the
  /// peak (signal + pixels + weights resident concurrently, ~40 of the
  /// ~220 bytes/sample of stored state).
  double staged_fraction = 0.18;
  /// Fraction of a rank's data resident in host memory at once.
  double host_resident_fraction = 0.18;
  /// Per-process host overhead: Python runtime + buffers (bytes).
  double host_overhead_cpu = 0.3e9;
  /// GPU-enabled processes also carry driver/context mirrors.
  double host_overhead_gpu = 1.3e9;
  /// CUDA context + XLA workspace per JAX process (bytes).
  double jax_context_bytes = 2.2e9;
  /// JAX pool fragmentation factor with preallocation disabled.
  double jax_pool_overhead = 1.3;
  /// CUDA context per OpenMP-target process (bytes).
  double omp_context_bytes = 0.5e9;
  /// The OpenMP port stages detector batches through a bounded,
  /// developer-managed pool rather than holding whole observations -
  /// the "lower memory usage" the paper observes (§4.1).
  double omp_batch_bytes = 2.0e9;
  double omp_pool_overhead = 1.1;
};

FrameworkModel framework_model();
MemoryModel memory_model();

}  // namespace toast::bench_model
