#pragma once

// Problem-size definitions for the paper's benchmark runs, plus the
// scale-factor plumbing that lets kernels execute functionally at a reduced
// sample count while the analytic cost model is evaluated at paper scale.
//
// Paper, section 4:
//   - medium: 5e9 samples (~1 TB of data), single node runs
//   - large : 5e10 samples (~10 TB), 8-node run
// A "sample" here is one time sample of one detector.

#include <cstddef>
#include <cstdint>
#include <string>

namespace toast::bench_model {

/// A benchmark problem: how much data the paper's run processes, and how
/// much we actually instantiate in memory for functional execution.
struct ProblemSize {
  std::string name;
  /// Total detector-samples at paper scale (across the whole job).
  double paper_total_samples = 0.0;
  /// Detectors in the focalplane at paper scale ("a couple thousand").
  std::int64_t paper_n_detectors = 0;

  /// Detectors actually instantiated per process for functional execution.
  std::int64_t actual_n_detectors = 0;
  /// Samples per detector actually instantiated per process.
  std::int64_t actual_n_samples = 0;

  /// Job geometry at paper scale.
  int nodes = 1;
  int procs_per_node = 16;
  int gpus_per_node = 4;
  int cores_per_node = 64;

  /// Observations (data chunks) per process; kernel launch counts are
  /// proportional to this, not to the sample count.
  int observations_per_proc = 1;

  /// HEALPix resolution of the sky maps.
  std::int64_t nside = 64;

  int threads_per_proc() const {
    const int procs = procs_per_node > 0 ? procs_per_node : 1;
    const int t = cores_per_node / procs;
    return t > 0 ? t : 1;
  }
  int total_procs() const { return nodes * procs_per_node; }

  /// Samples per detector, per process, at paper scale.
  double paper_samples_per_det_per_proc() const {
    return paper_total_samples /
           (static_cast<double>(paper_n_detectors) * total_procs());
  }

  /// Ratio between the paper-scale per-process work and the work we
  /// actually execute; multiplies measured work estimates before they are
  /// fed to the virtual clocks.  The per-process work is spread over
  /// `observations_per_proc` observations, each executed functionally at
  /// the reduced size.
  double sample_scale() const {
    const double actual = static_cast<double>(actual_n_detectors) *
                          static_cast<double>(actual_n_samples) *
                          static_cast<double>(observations_per_proc);
    const double paper =
        paper_total_samples / static_cast<double>(total_procs());
    return paper / actual;
  }

  /// Bytes of timestream state per detector-sample on the host (signal,
  /// flags, pixels, weights, pointing, templates...).  Chosen so that the
  /// medium problem is ~1 TB, matching the paper's description.
  static constexpr double bytes_per_sample = 200.0;

  /// Total data volume at paper scale, in bytes.
  double paper_total_bytes() const {
    return paper_total_samples * bytes_per_sample;
  }
};

/// Medium problem: 5e9 samples, one node (Figure 4 / Figure 6).
ProblemSize medium_problem();

/// Large problem: 5e10 samples, eight nodes (Figure 5).
ProblemSize large_problem();

/// A miniature problem for unit tests and quick examples: small enough to
/// run in milliseconds, with the same structure.
ProblemSize tiny_problem();

}  // namespace toast::bench_model
