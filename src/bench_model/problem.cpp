#include "bench_model/problem.hpp"

#include "bench_model/calibration.hpp"

namespace toast::bench_model {

ProblemSize medium_problem() {
  ProblemSize p;
  p.name = "medium";
  p.paper_total_samples = 5.0e9;
  p.paper_n_detectors = 2048;
  p.actual_n_detectors = 8;
  p.actual_n_samples = 4096;
  p.nodes = 1;
  p.procs_per_node = 16;
  p.gpus_per_node = 4;
  p.cores_per_node = 64;
  p.observations_per_proc = 4;
  p.nside = 64;
  return p;
}

ProblemSize large_problem() {
  ProblemSize p;
  p.name = "large";
  p.paper_total_samples = 5.0e10;
  p.paper_n_detectors = 2048;
  p.actual_n_detectors = 8;
  p.actual_n_samples = 4096;
  p.nodes = 8;
  p.procs_per_node = 16;
  p.gpus_per_node = 4;
  p.cores_per_node = 64;
  p.observations_per_proc = 4;
  p.nside = 64;
  return p;
}

ProblemSize tiny_problem() {
  ProblemSize p;
  p.name = "tiny";
  p.paper_total_samples = 4.0e6;
  p.paper_n_detectors = 4;
  p.actual_n_detectors = 4;
  p.actual_n_samples = 1024;
  p.nodes = 1;
  p.procs_per_node = 1;
  p.gpus_per_node = 1;
  p.cores_per_node = 4;
  p.observations_per_proc = 1;
  p.nside = 16;
  return p;
}

FrameworkModel framework_model() { return FrameworkModel{}; }
MemoryModel memory_model() { return MemoryModel{}; }

}  // namespace toast::bench_model
