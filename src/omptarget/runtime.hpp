#pragma once

// Mini OpenMP Target Offload runtime.
//
// Reproduces the structure of the paper's OpenMP port (§3.1.2):
//   - a host<->device pointer association table with explicit
//     update_device / update_host / reset operations (TOAST's accel data
//     API, implemented over omp_target_alloc + the memory pool);
//   - a launch entry point modelling
//       #pragma omp target teams distribute parallel for collapse(3)
//     over (detector, interval, padded-sample) index space with the
//     guard-cut pattern: iterations beyond the true interval length return
//     without doing work, and only the guard test is charged.
//
// Functional execution happens on the host against *device shadow copies*
// of the mapped buffers: a kernel that runs before its inputs were
// update_device()'d sees stale data, exactly like a real offload bug.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "accel/timelog.hpp"
#include "accel/work.hpp"
#include "obs/trace.hpp"
#include "omptarget/pool.hpp"
#include "sched/scheduler.hpp"

namespace toast::omptarget {

/// Per-iteration cost declaration for a target region.  OpenMP Target
/// Offload has no view of the loop body, so (like a performance engineer
/// reasoning about a kernel) the port declares its per-iteration work;
/// tests cross-check these declarations against the mini-XLA's counted
/// costs.
struct IterCost {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  /// Cost of an iteration cut by the interval guard (just the test).
  double guard_flops = 2.0;
  /// Longest-path multiplier for divergent branches inside the body; SIMT
  /// warps pay the longest taken path, not the sum of all paths.
  double divergence = 1.0;
  /// Atomic updates per executed iteration and their conflict rate.
  double atomic_ops = 0.0;
  double atomic_conflict_rate = 0.0;
};

/// Async launch clauses for a target region, the OpenMP 5.x
/// `nowait` / `depend(...)` pair mapped onto the stream engine: a nowait
/// region enqueues on a stream (device queue) and returns after paying
/// only the host dispatch cost; `depends` are events from record_event().
struct LaunchOptions {
  bool nowait = false;
  sched::StreamId stream = 0;
  std::vector<sched::EventId> depends;
};

class Runtime {
 public:
  Runtime(accel::SimDevice& device, accel::VirtualClock& clock,
          obs::Tracer& tracer)
      : device_(device),
        clock_(clock),
        tracer_(tracer),
        pool_(device),
        sched_(device, clock, &tracer, /*n_streams=*/1, "omptarget") {}

  accel::SimDevice& device() { return device_; }
  accel::VirtualClock& clock() { return clock_; }
  obs::Tracer& tracer() { return tracer_; }
  /// Flat per-category view of everything this runtime charged (the
  /// seed's TimeLog, aggregated from the tracer's spans).
  accel::TimeLog log() const { return tracer_.timelog(); }
  DevicePool& pool() { return pool_; }

  /// Attach a fault injector to this runtime's scheduler and pool
  /// (nullptr detaches).  Not owned.
  void set_fault_injector(fault::FaultInjector* f) {
    sched_.set_fault_injector(f);
    pool_.set_fault_injector(f);
  }

  /// Host-side cost of submitting one target region (OpenMP runtime +
  /// driver).  Lower than the JAX dispatch path, which is one of the
  /// paper's findings (§4.1, footnote 10).
  double dispatch_overhead() const { return dispatch_overhead_; }
  void set_dispatch_overhead(double s) { dispatch_overhead_ = s; }

  /// Ratio of paper-scale work to functionally executed work; multiplies
  /// work estimates and transfer sizes before they reach the clocks.
  double work_scale() const { return work_scale_; }
  void set_work_scale(double s) { work_scale_ = s; }

  // --- data environment (TOAST accel data API over map clauses) ---------

  /// Map a host buffer to the device: allocates a device shadow copy.
  void data_create(const void* host, std::size_t bytes);
  /// Copy host -> device shadow.
  void data_update_device(const void* host);
  /// The `nowait` form (paper §2.2.2: compilers attempt asynchronous data
  /// movement, but overlapping it with execution needs explicit
  /// dependencies).  The copy happens functionally at once; its modelled
  /// cost runs on `stream`'s timeline, serializes with other transfers on
  /// the PCIe link, and overlaps compute until a synchronization point.
  void data_update_device_async(const void* host, sched::StreamId stream = 0);
  /// Synchronize queued async transfers: charges only the portion of the
  /// transfer time not already hidden behind work submitted since.
  void wait_transfers();
  /// Completion time (virtual clock) of the queued transfers; 0.0 when
  /// the link is drained.
  double pending_transfer_completion() const {
    return sched_.pending_transfer_completion();
  }
  /// Copy device shadow -> host.
  void data_update_host(const void* host);
  /// Async device -> host readback on `stream` (the functional copy
  /// happens at once; the modelled cost queues on the link).
  void data_update_host_async(const void* host, sched::StreamId stream = 0);
  /// Zero the device shadow (device-side memset).
  void data_reset(const void* host);
  /// Unmap and release the device shadow.
  void data_delete(const void* host);
  bool data_present(const void* host) const;
  std::size_t data_bytes(const void* host) const;

  /// Device address of a mapped buffer (the shadow copy), typed.  Throws
  /// if the buffer is not mapped — the moral equivalent of an offload
  /// segfault, but diagnosable.
  template <typename T>
  T* device_ptr(const T* host) {
    return static_cast<T*>(raw_device_ptr(host));
  }

  // --- kernel launch -----------------------------------------------------

  /// #pragma omp target teams distribute parallel for collapse(3).
  ///
  /// Executes body(a, b, c) over [0,na) x [0,nb) x [0,nc); the body returns
  /// false when the interval guard cut the iteration.  Charges the device
  /// model with the measured executed/cut mix and logs the virtual time
  /// under `name`.  Returns the (scaled) work estimate for inspection.
  accel::WorkEstimate target_for_collapse3(
      const std::string& name, std::int64_t na, std::int64_t nb,
      std::int64_t nc, const IterCost& cost,
      const std::function<bool(std::int64_t, std::int64_t, std::int64_t)>&
          body, const LaunchOptions& opts = {});

  /// Single collapsed loop (used by the amplitude-space kernels).
  accel::WorkEstimate target_for(
      const std::string& name, std::int64_t n, const IterCost& cost,
      const std::function<bool(std::int64_t)>& body,
      const LaunchOptions& opts = {});

  // --- streams and events (the OpenMP task-graph surface) ----------------

  /// The stream engine all of this runtime's device time flows through.
  sched::Scheduler& scheduler() { return sched_; }
  /// Snapshot `stream`'s completion front for use in LaunchOptions or
  /// cross-stream waits.
  sched::EventId record_event(sched::StreamId stream) {
    return sched_.record_event(stream);
  }
  /// Block the host until `stream` drains (taskwait on one queue).
  void sync_stream(sched::StreamId stream) {
    sched_.sync_stream(stream, "accel_stream_wait");
  }
  /// Block the host until every queue and engine drains.
  void sync_all() { sched_.sync_all("accel_device_wait"); }

 private:
  void* raw_device_ptr(const void* host);
  accel::WorkEstimate charge(const std::string& name, double executed,
                             double cut, double total_items,
                             const IterCost& cost, const LaunchOptions& opts);

  struct Mapping {
    DevicePtr dptr;
    std::vector<std::byte> shadow;
  };

  accel::SimDevice& device_;
  accel::VirtualClock& clock_;
  obs::Tracer& tracer_;
  DevicePool pool_;
  sched::Scheduler sched_;
  std::map<const void*, Mapping> mapped_;
  double dispatch_overhead_ = 6.0e-6;
  double work_scale_ = 1.0;
};

/// RAII form of "#pragma omp target data map(...)": maps a set of host
/// buffers on entry and unmaps them on exit, optionally copying in/out.
class ScopedDataRegion {
 public:
  struct MapSpec {
    const void* host = nullptr;
    std::size_t bytes = 0;
    bool to_device = false;    // map(to:) / map(tofrom:)
    bool from_device = false;  // map(from:) / map(tofrom:)
  };

  ScopedDataRegion(Runtime& rt, std::vector<MapSpec> maps);
  ~ScopedDataRegion();

  ScopedDataRegion(const ScopedDataRegion&) = delete;
  ScopedDataRegion& operator=(const ScopedDataRegion&) = delete;

 private:
  Runtime& rt_;
  std::vector<MapSpec> maps_;
};

}  // namespace toast::omptarget
