#include "omptarget/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace toast::omptarget {

void Runtime::data_create(const void* host, std::size_t bytes) {
  if (mapped_.count(host) != 0) {
    throw std::logic_error("omptarget: buffer already mapped");
  }
  double alloc_cost = 0.0;
  Mapping m;
  m.dptr = pool_.allocate(bytes, alloc_cost);
  m.shadow.resize(bytes);
  mapped_.emplace(host, std::move(m));
  clock_.advance(alloc_cost);
  tracer_.record("accel_data_create", "alloc", alloc_cost, "omptarget");
}

void Runtime::data_update_device(const void* host) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error("omptarget: update_device on unmapped buffer");
  }
  std::memcpy(it->second.shadow.data(), host, it->second.shadow.size());
  const double bytes =
      static_cast<double>(it->second.shadow.size()) * work_scale_;
  sched_.transfer_sync("accel_data_update_device", bytes,
                       /*to_device=*/true);
}

void Runtime::data_update_device_async(const void* host,
                                       sched::StreamId stream) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error("omptarget: async update on unmapped buffer");
  }
  std::memcpy(it->second.shadow.data(), host, it->second.shadow.size());
  const double bytes =
      static_cast<double>(it->second.shadow.size()) * work_scale_;
  sched_.transfer_async(stream, "accel_data_update_device_async", bytes,
                        /*to_device=*/true);
}

void Runtime::wait_transfers() {
  sched_.sync_transfers("accel_transfer_wait");
}

void Runtime::data_update_host(const void* host) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error("omptarget: update_host on unmapped buffer");
  }
  std::memcpy(const_cast<void*>(host), it->second.shadow.data(),
              it->second.shadow.size());
  const double bytes =
      static_cast<double>(it->second.shadow.size()) * work_scale_;
  sched_.transfer_sync("accel_data_update_host", bytes,
                       /*to_device=*/false);
}

void Runtime::data_update_host_async(const void* host,
                                     sched::StreamId stream) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error("omptarget: async update on unmapped buffer");
  }
  std::memcpy(const_cast<void*>(host), it->second.shadow.data(),
              it->second.shadow.size());
  const double bytes =
      static_cast<double>(it->second.shadow.size()) * work_scale_;
  sched_.transfer_async(stream, "accel_data_update_host_async", bytes,
                        /*to_device=*/false);
}

void Runtime::data_reset(const void* host) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error("omptarget: reset on unmapped buffer");
  }
  std::memset(it->second.shadow.data(), 0, it->second.shadow.size());
  sched_.fill_sync("accel_data_reset",
                   static_cast<double>(it->second.shadow.size()) *
                       work_scale_);
}

void Runtime::data_delete(const void* host) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    return;
  }
  pool_.release(it->second.dptr);
  mapped_.erase(it);
  tracer_.record("accel_data_delete", "alloc", 0.0, "omptarget");
}

bool Runtime::data_present(const void* host) const {
  return mapped_.count(host) != 0;
}

std::size_t Runtime::data_bytes(const void* host) const {
  const auto it = mapped_.find(host);
  return it == mapped_.end() ? 0 : it->second.shadow.size();
}

void* Runtime::raw_device_ptr(const void* host) {
  auto it = mapped_.find(host);
  if (it == mapped_.end()) {
    throw std::logic_error(
        "omptarget: device_ptr on unmapped buffer (missing data_create)");
  }
  return it->second.shadow.data();
}

accel::WorkEstimate Runtime::charge(const std::string& name, double executed,
                                    double cut, double total_items,
                                    const IterCost& cost,
                                    const LaunchOptions& opts) {
  accel::WorkEstimate w;
  w.flops = executed * cost.flops + cut * cost.guard_flops;
  w.bytes_read = executed * cost.bytes_read;
  w.bytes_written = executed * cost.bytes_written;
  w.launches = 1.0;
  w.parallel_items = total_items;
  w.divergence = cost.divergence;
  w.atomic_ops = executed * cost.atomic_ops;
  w.atomic_conflict_rate = cost.atomic_conflict_rate;

  const accel::WorkEstimate scaled = w.scaled(work_scale_);
  if (opts.nowait) {
    // nowait: the host pays only the submission cost; the kernel queues
    // on its stream, after any depend() events, and the logged span
    // covers device execution time alone.
    clock_.advance(dispatch_overhead_);
    sched_.launch_async(opts.stream, name, scaled, opts.depends);
  } else {
    sched_.kernel_sync(name, scaled, dispatch_overhead_);
  }
  return scaled;
}

accel::WorkEstimate Runtime::target_for_collapse3(
    const std::string& name, std::int64_t na, std::int64_t nb,
    std::int64_t nc, const IterCost& cost,
    const std::function<bool(std::int64_t, std::int64_t, std::int64_t)>&
        body, const LaunchOptions& opts) {
  double executed = 0.0;
  double cut = 0.0;
  for (std::int64_t a = 0; a < na; ++a) {
    for (std::int64_t b = 0; b < nb; ++b) {
      for (std::int64_t c = 0; c < nc; ++c) {
        if (body(a, b, c)) {
          executed += 1.0;
        } else {
          cut += 1.0;
        }
      }
    }
  }
  return charge(name, executed, cut,
                static_cast<double>(na) * static_cast<double>(nb) *
                    static_cast<double>(nc),
                cost, opts);
}

accel::WorkEstimate Runtime::target_for(
    const std::string& name, std::int64_t n, const IterCost& cost,
    const std::function<bool(std::int64_t)>& body,
    const LaunchOptions& opts) {
  double executed = 0.0;
  double cut = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (body(i)) {
      executed += 1.0;
    } else {
      cut += 1.0;
    }
  }
  return charge(name, executed, cut, static_cast<double>(n), cost, opts);
}

ScopedDataRegion::ScopedDataRegion(Runtime& rt, std::vector<MapSpec> maps)
    : rt_(rt), maps_(std::move(maps)) {
  for (const auto& m : maps_) {
    rt_.data_create(m.host, m.bytes);
    if (m.to_device) {
      rt_.data_update_device(m.host);
    }
  }
}

ScopedDataRegion::~ScopedDataRegion() {
  for (const auto& m : maps_) {
    if (m.from_device) {
      rt_.data_update_host(m.host);
    }
    rt_.data_delete(m.host);
  }
}

}  // namespace toast::omptarget
