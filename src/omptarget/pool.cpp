#include "omptarget/pool.hpp"

#include <algorithm>

namespace toast::omptarget {

DevicePool::~DevicePool() { release_all(); }

std::size_t DevicePool::size_class(std::size_t bytes) {
  std::size_t c = 64;
  while (c < bytes) {
    c <<= 1;
  }
  return c;
}

DevicePtr DevicePool::allocate(std::size_t bytes, double& cost_seconds) {
  const std::size_t cls = size_class(bytes);
  auto& list = free_lists_[cls];
  DevicePtr ptr;
  ptr.bytes = cls;
  if (!list.empty()) {
    ptr.id = list.back();
    list.pop_back();
    pooled_ -= cls;
    ++hits_;
    cost_seconds = 0.0;
  } else {
    cost_seconds = raw_alloc_cost_;
    int attempt = 0;
    for (;;) {
      try {
        device_.allocate(cls, "omptarget_pool");
        break;
      } catch (const accel::DeviceOomError& e) {
        // Shrink instead of aborting: hand pooled free blocks back to
        // the device and re-stage (real pressure may clear); injected
        // faults without pooled slack get their bounded backoff retry.
        if (pooled_ > 0) {
          drain_free_lists();
          ++shrinks_;
          cost_seconds += raw_alloc_cost_;
          if (faults_ != nullptr) {
            faults_->note_oom_recovery("omptarget_pool", 0.0);
          }
        } else if (faults_ == nullptr ||
                   !faults_->on_oom("omptarget_pool", e, attempt)) {
          throw;
        }
        ++attempt;
      }
    }
    ptr.id = next_id_++;
    ++misses_;
  }
  live_[ptr.id] = cls;
  in_use_ += cls;
  high_water_ = std::max(high_water_, in_use_ + pooled_);
  return ptr;
}

void DevicePool::release(DevicePtr ptr) {
  const auto it = live_.find(ptr.id);
  if (it == live_.end()) {
    return;  // double release is a no-op
  }
  const std::size_t cls = it->second;
  live_.erase(it);
  in_use_ -= cls;
  pooled_ += cls;
  free_lists_[cls].push_back(ptr.id);
}

std::size_t DevicePool::drain_free_lists() {
  std::size_t freed = 0;
  for (auto& [cls, list] : free_lists_) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      device_.deallocate(cls, "omptarget_pool");
      freed += cls;
    }
    list.clear();
  }
  pooled_ = 0;
  return freed;
}

void DevicePool::release_all() {
  drain_free_lists();
  // Live allocations stay live; callers must release them first.
}

}  // namespace toast::omptarget
