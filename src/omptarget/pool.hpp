#pragma once

// Device memory pool for the OpenMP Target Offload backend.
//
// The paper (§3.1.2) describes a manually implemented memory pool wrapped
// around omp_target_alloc(), managed by a C++ singleton, because raw device
// allocation is slow.  This is that pool: power-of-two size classes with
// free-lists, backed by the simulated device's memory accounting, plus the
// hit/miss statistics the ablation benchmark reports.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "accel/sim_device.hpp"
#include "fault/fault.hpp"

namespace toast::omptarget {

/// Opaque device allocation handle.
struct DevicePtr {
  std::uint64_t id = 0;
  std::size_t bytes = 0;  // rounded-up size class
  bool valid() const { return id != 0; }
};

class DevicePool {
 public:
  /// `raw_alloc_cost` models the latency of one real omp_target_alloc()
  /// call (microseconds of driver work the pool exists to avoid).
  explicit DevicePool(accel::SimDevice& device,
                      double raw_alloc_cost = 1.0e-4)
      : device_(device), raw_alloc_cost_(raw_alloc_cost) {}

  ~DevicePool();

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  /// Attach a fault injector (nullptr detaches).  Not owned.  Injected
  /// OOMs on the miss path then get bounded backoff retries instead of
  /// propagating immediately.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  /// Allocate at least `bytes`; returns a handle and the virtual seconds
  /// the allocation cost (0 on pool hit, raw_alloc_cost on miss).  On
  /// DeviceOomError the pool shrinks — pooled free blocks go back to the
  /// device — and re-stages the allocation (paying the driver cost again)
  /// before giving up and propagating the error.
  DevicePtr allocate(std::size_t bytes, double& cost_seconds);

  /// Return an allocation to the pool (never releases device memory until
  /// release_all, mirroring the paper's design).
  void release(DevicePtr ptr);

  /// Free every pooled block back to the device.
  void release_all();

  std::size_t bytes_in_use() const { return in_use_; }
  std::size_t bytes_pooled() const { return pooled_; }
  std::size_t high_water_bytes() const { return high_water_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Times the pool drained its free lists to survive an OOM.
  std::uint64_t shrinks() const { return shrinks_; }

  static std::size_t size_class(std::size_t bytes);

 private:
  /// Hand every pooled free block back to the device; returns the bytes
  /// freed.
  std::size_t drain_free_lists();

  accel::SimDevice& device_;
  fault::FaultInjector* faults_ = nullptr;
  double raw_alloc_cost_;
  std::map<std::size_t, std::vector<std::uint64_t>> free_lists_;
  std::map<std::uint64_t, std::size_t> live_;  // id -> size class
  std::uint64_t next_id_ = 1;
  std::size_t in_use_ = 0;
  std::size_t pooled_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace toast::omptarget
