#pragma once

// Step-scheduled collective-communication engine (docs/MODEL.md §9).
//
// Collectives are decomposed into chunked point-to-point *steps* — a step
// moves one contiguous chunk from a source rank to a destination rank and
// optionally reduces (sum) into the destination's buffer.  The step DAG
// is scheduled on per-rank virtual NIC engines through
// sched::schedule_lanes: a step holds the sender's TX lane and the
// receiver's RX lane for its wire time, ranks sharing a node's NICs
// contend for the same lanes, and intra-node steps bypass the NICs on a
// faster shared-memory link.  Payload execution is functional: replaying
// the steps in construction order actually moves and reduces the data,
// generalizing mpisim::LocalComm from "sum everything" to the exact chunk
// choreography of each algorithm.
//
// Equivalence guarantee (the test oracle, mirroring the plan-vs-
// interpreter and sched-vs-seed discipline of earlier layers): on a
// Topology::uniform() layout the ring-allreduce, binomial-broadcast and
// linear-gather schedules collapse to left-associative folds of identical
// per-round steps, which is exactly how mpisim::CommModel now computes
// its closed forms — bit for bit, not within tolerance.
//
// Fault hooks: with an armed injector, each step draws a "link"
// degradation factor (multiplicative slowdown of the wire time) and a
// "chunk" loss probe (retry penalty placed ahead of the step on its
// lanes; an exhausted retry budget throws PersistentFaultError).  A
// disarmed injector leaves every schedule bit-for-bit unchanged.

#include <cstddef>
#include <string>
#include <vector>

#include "comm/topology.hpp"
#include "config/schedule.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"

namespace toast::comm {

/// The collective decomposition algorithm is a schedule-space axis; the
/// canonical enum lives in the unified config layer (kRing, kRecursive,
/// kTree) and comm re-exports it under its historical name.
using Algorithm = config::CommAlgorithm;
using config::to_string;

/// Parse "ring" / "recursive" / "tree"; throws std::runtime_error.
inline Algorithm algorithm_from_string(const std::string& s) {
  return config::comm_algorithm_from_string(s);
}

/// One point-to-point chunk transfer.  `bytes` is the modelled wire
/// volume; the element span [*_offset, *_offset + count) is the payload
/// the functional executor moves (count == 0 on cost-only DAGs).
struct Step {
  int src = 0;
  int dst = 0;
  double bytes = 0.0;
  std::size_t src_offset = 0;
  std::size_t dst_offset = 0;
  std::size_t count = 0;
  /// Destination accumulates (+=) instead of overwriting.
  bool reduce = false;
  int round = 0;
  std::vector<int> deps;  ///< indices of earlier steps in the DAG
};

struct StepDag {
  const char* collective = "";  ///< "allreduce" | "bcast" | ...
  Algorithm algorithm = Algorithm::kRing;
  int ranks = 1;
  std::vector<Step> steps;
};

// --- step-DAG builders (pure functions of the parameters) ------------------

/// Ring allreduce: n-1 reduce-scatter rounds + n-1 all-gather rounds,
/// every rank forwarding a 1/n chunk to its right neighbour per round.
StepDag ring_allreduce(int ranks, double bytes, std::size_t count = 0);
/// Reduce-scatter + all-gather by recursive halving/doubling (pairwise
/// exchanges at distance n/2, n/4, ...).  Requires a power-of-two rank
/// count; anything else falls back to the ring decomposition.
StepDag rs_ag_allreduce(int ranks, double bytes, std::size_t count = 0);
/// Binomial-tree reduce to rank 0 followed by binomial-tree broadcast.
StepDag tree_allreduce(int ranks, double bytes, std::size_t count = 0);
/// Binomial-tree broadcast from rank 0: ceil(log2 n) doubling rounds.
StepDag tree_bcast(int ranks, double bytes, std::size_t count = 0);
/// Binomial-tree reduce (sum) to rank 0.
StepDag tree_reduce(int ranks, double bytes, std::size_t count = 0);
/// Linear gather to rank 0: ranks 1..n-1 send their block to the root,
/// serializing on the root's RX lane.  `count` is elements *per rank*;
/// block r lands at offset r*count of the root's buffer.
StepDag linear_gather(int ranks, double bytes_per_rank,
                      std::size_t count = 0);

/// Allreduce DAG for the chosen algorithm.
StepDag allreduce_dag(Algorithm alg, int ranks, double bytes,
                      std::size_t count = 0);

/// Re-chunked copy of a DAG: every step whose wire volume exceeds
/// `max_chunk_bytes` is cut into ceil(bytes / max_chunk_bytes) sequential
/// sub-steps (even byte split, element spans via the same near-equal
/// chunk bounds the builders use).  Sub-step 0 inherits the original
/// dependencies (remapped to the *last* sub-step of each dependency), so
/// the split schedule is conservative: payload replay order and reduction
/// results are unchanged, only the lane granularity differs.
/// max_chunk_bytes <= 0 returns the DAG untouched.
StepDag split_chunks(const StepDag& dag, double max_chunk_bytes);

// --- scheduling and execution ----------------------------------------------

struct RunOptions {
  /// Schedule origin on the virtual timeline (the caller's clock.now()).
  double epoch = 0.0;
  /// When set, every NIC step emits an unlogged span on its sender's NIC
  /// lane (Tracer stream id = lane_base + nic index) so Chrome traces
  /// render per-rank NIC lanes; the caller picks lane_base clear of its
  /// compute/copy stream ids.
  obs::Tracer* tracer = nullptr;
  int lane_base = 0;
  /// Also emit spans for intra-node (non-NIC) steps, on lanes after the
  /// NIC block.
  bool trace_intra = false;
  /// Fault-site prefix for the link/chunk hooks.
  std::string site = "comm";
  /// Armed injector: link degradation + lost-chunk retries (drawn from
  /// the per-(kind, site) counter RNG streams).  Null or disarmed: the
  /// schedule is bit-for-bit the fault-free one.
  fault::FaultInjector* faults = nullptr;
  /// Schedule-space chunk-size knob: the collective cost entry points
  /// (`*_seconds`) run their DAG through split_chunks with this bound
  /// before scheduling.  0 (the default) keeps each algorithm's natural
  /// chunk size — bit-for-bit the pre-knob schedule.
  double max_chunk_bytes = 0.0;
};

struct ScheduleResult {
  std::vector<double> start;  ///< absolute (>= epoch), one per step
  std::vector<double> end;
  double makespan = 0.0;  ///< relative to epoch
};

class Engine {
 public:
  explicit Engine(Topology topo) : topo_(topo) {}

  const Topology& topology() const { return topo_; }

  /// Place a step DAG on the topology's NIC/memory lanes.  Cost only: no
  /// payload moves.  Emits lane spans and draws fault hooks per RunOptions.
  /// Implemented as a StepScheduler loop, so one-shot and step-at-a-time
  /// scheduling are bit-for-bit the same placement.
  ScheduleResult schedule(const StepDag& dag, const RunOptions& opt = {}) const;

  // --- collective costs (makespan seconds, relative to opt.epoch) --------

  double allreduce_seconds(double bytes, Algorithm alg = Algorithm::kRing,
                           const RunOptions& opt = {}) const;
  double bcast_seconds(double bytes, const RunOptions& opt = {}) const;
  double reduce_seconds(double bytes, const RunOptions& opt = {}) const;
  double gather_seconds(double bytes_per_rank,
                        const RunOptions& opt = {}) const;

  // --- functional payload execution ---------------------------------------

  /// Replay a DAG's payload moves in construction order over per-rank
  /// buffers (bufs[r] is rank r's data).  Throws std::invalid_argument
  /// when a step's span does not fit its buffers.
  static void execute_payload(const StepDag& dag,
                              std::vector<std::vector<double>>& bufs);

  /// Functional allreduce: every rank contributes one equal-length buffer;
  /// all ranks end with the identical reduced vector (the reduction order
  /// is the algorithm's — deterministic, but not LocalComm's rank order).
  /// Also schedules the DAG; `sched_out` receives the placement.
  std::vector<std::vector<double>> allreduce(
      const std::vector<std::vector<double>>& bufs,
      Algorithm alg = Algorithm::kRing, ScheduleResult* sched_out = nullptr,
      const RunOptions& opt = {}) const;

  /// Functional broadcast of rank 0's buffer to every rank.
  std::vector<std::vector<double>> bcast(
      const std::vector<std::vector<double>>& bufs,
      ScheduleResult* sched_out = nullptr, const RunOptions& opt = {}) const;

  /// Functional gather: rank r's block lands at offset r*m of the result
  /// (m = per-rank length).
  std::vector<double> gather(const std::vector<std::vector<double>>& bufs,
                             ScheduleResult* sched_out = nullptr,
                             const RunOptions& opt = {}) const;

 private:
  std::size_t check_world(const std::vector<std::vector<double>>& bufs) const;

  Topology topo_;
};

/// Step-at-a-time scheduling of one DAG: place_next() places exactly one
/// step (drawing that step's link/chunk fault hooks as it goes) with the
/// same arithmetic as Engine::schedule — which is itself a place_next()
/// loop, so incremental and one-shot execution are bit-for-bit identical.
/// The async task runtime drives this cursor to treat individual
/// collective steps as tasks.  finish() emits the trace spans and fault
/// notes (and throws PersistentFaultError when a chunk retry budget was
/// exhausted), then returns the placement; call it once, after every step
/// is placed.  The engine, DAG and option pointers must outlive the
/// scheduler.
class StepScheduler {
 public:
  StepScheduler(const Engine& engine, const StepDag& dag,
                const RunOptions& opt);

  std::size_t placed() const { return lanes_.size(); }
  bool done() const { return placed() >= dag_.steps.size(); }
  /// Place the next step; returns its absolute end time on the timeline.
  double place_next();
  ScheduleResult finish();

 private:
  struct FaultNote {
    std::size_t step = 0;
    std::string site;
    double extra = 0.0;  // link-degrade stretch of the wire time
    fault::ProbeResult probe;
  };

  const Engine& engine_;
  const StepDag& dag_;
  RunOptions opt_;
  bool faulty_ = false;
  sched::LaneSchedule lanes_;
  std::vector<double> seconds_;  ///< placed wire time, per step
  std::vector<FaultNote> notes_;
};

}  // namespace toast::comm
