#include "comm/topology.hpp"

#include <stdexcept>
#include <vector>

namespace toast::comm {

TopologyError::TopologyError(std::string field, long long value,
                             const std::string& detail)
    : std::invalid_argument("Topology: " + detail),
      field_(std::move(field)),
      value_(value) {}

Topology::Topology(int ranks, int rpn, int nics_per_node, LinkSpec inter,
                   LinkSpec intra)
    : ranks_(ranks),
      rpn_(rpn),
      nics_per_node_(nics_per_node),
      inter_(inter),
      intra_(intra) {
  if (ranks_ < 1) {
    throw TopologyError("ranks", ranks_, "need at least one rank");
  }
  if (rpn_ < 1) {
    throw TopologyError("ranks_per_node", rpn_,
                        "ranks_per_node must be positive");
  }
  if (nics_per_node_ < 1) {
    throw TopologyError("nics_per_node", nics_per_node_,
                        "nics_per_node must be positive");
  }
  if (inter_.bandwidth <= 0.0 || intra_.bandwidth <= 0.0) {
    throw TopologyError("bandwidth", 0, "link bandwidth must be positive");
  }
}

Topology Topology::uniform(int ranks, const accel::NetworkSpec& net) {
  const LinkSpec nic{net.bandwidth, net.latency};
  // One rank per node: the intra link can never be exercised, but keep it
  // identical to the NIC link so every conceivable step costs the same.
  return Topology(ranks, 1, 1, nic, nic);
}

Topology Topology::cluster(int ranks, int ranks_per_node,
                           const accel::NetworkSpec& net) {
  // ranks_per_node may exceed ranks: a shrunk world legitimately leaves a
  // partial node, so only positivity is enforced (in the constructor).
  return Topology(ranks, ranks_per_node, net.nics_per_node,
                  LinkSpec{net.bandwidth, net.latency},
                  LinkSpec{net.intra_bandwidth, net.intra_latency});
}

Topology Topology::shrink(int survivors) const {
  if (survivors < 1 || survivors > ranks_) {
    throw TopologyError("survivors", survivors,
                        "survivors must be in [1, n_ranks()]");
  }
  return Topology(survivors, rpn_, nics_per_node_, inter_, intra_);
}

Topology Topology::shrink(const std::vector<int>& survivors) const {
  if (survivors.empty()) {
    throw TopologyError("survivors", 0, "survivor set must not be empty");
  }
  std::vector<bool> seen(static_cast<std::size_t>(ranks_), false);
  for (int r : survivors) {
    if (r < 0 || r >= ranks_) {
      throw TopologyError("survivors", r,
                          "survivor rank out of range [0, n_ranks())");
    }
    if (seen[static_cast<std::size_t>(r)]) {
      throw TopologyError("survivors", r, "duplicate survivor rank");
    }
    seen[static_cast<std::size_t>(r)] = true;
  }
  // Survivors re-pack densely in rank order: same node packing and link
  // classes over the smaller world.
  return Topology(static_cast<int>(survivors.size()), rpn_, nics_per_node_,
                  inter_, intra_);
}

}  // namespace toast::comm
