#include "comm/topology.hpp"

#include <stdexcept>

namespace toast::comm {

Topology::Topology(int ranks, int rpn, int nics_per_node, LinkSpec inter,
                   LinkSpec intra)
    : ranks_(ranks),
      rpn_(rpn),
      nics_per_node_(nics_per_node),
      inter_(inter),
      intra_(intra) {
  if (ranks_ < 1) {
    throw std::invalid_argument("Topology: need at least one rank");
  }
  if (rpn_ < 1 || nics_per_node_ < 1) {
    throw std::invalid_argument(
        "Topology: ranks_per_node and nics_per_node must be positive");
  }
  if (inter_.bandwidth <= 0.0 || intra_.bandwidth <= 0.0) {
    throw std::invalid_argument("Topology: link bandwidth must be positive");
  }
}

Topology Topology::uniform(int ranks, const accel::NetworkSpec& net) {
  const LinkSpec nic{net.bandwidth, net.latency};
  // One rank per node: the intra link can never be exercised, but keep it
  // identical to the NIC link so every conceivable step costs the same.
  return Topology(ranks, 1, 1, nic, nic);
}

Topology Topology::cluster(int ranks, int ranks_per_node,
                           const accel::NetworkSpec& net) {
  return Topology(ranks, ranks_per_node, net.nics_per_node,
                  LinkSpec{net.bandwidth, net.latency},
                  LinkSpec{net.intra_bandwidth, net.intra_latency});
}

Topology Topology::shrink(int survivors) const {
  if (survivors < 1 || survivors > ranks_) {
    throw std::invalid_argument(
        "Topology::shrink: survivors must be in [1, n_ranks()]");
  }
  return Topology(survivors, rpn_, nics_per_node_, inter_, intra_);
}

}  // namespace toast::comm
