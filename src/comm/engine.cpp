#include "comm/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sched/scheduler.hpp"

namespace toast::comm {

namespace {

/// Element boundary of chunk `c` when `count` elements are cut into
/// `ranks` near-equal chunks (chunk c spans [bound(c), bound(c+1))).
std::size_t chunk_bound(std::size_t count, int ranks, int c) {
  return count * static_cast<std::size_t>(c) /
         static_cast<std::size_t>(ranks);
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

StepDag ring_allreduce(int ranks, double bytes, std::size_t count) {
  StepDag dag;
  dag.collective = "allreduce";
  dag.algorithm = Algorithm::kRing;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes <= 0.0) {
    return dag;
  }
  const int n = ranks;
  const double chunk_bytes = bytes / static_cast<double>(n);
  // 2(n-1) global rounds: n-1 reduce-scatter then n-1 all-gather.  In
  // round g, rank r forwards one chunk to its right neighbour; the chunk
  // index walks the ring so that chunk c finishes fully reduced at rank
  // (c-1+n)%n after the scatter phase, then circulates back out.
  dag.steps.reserve(static_cast<std::size_t>(2 * (n - 1)) *
                    static_cast<std::size_t>(n));
  for (int g = 0; g < 2 * (n - 1); ++g) {
    const bool reduce = g < n - 1;
    for (int r = 0; r < n; ++r) {
      Step st;
      st.src = r;
      st.dst = (r + 1) % n;
      st.bytes = chunk_bytes;
      const int c = reduce ? (((r - g) % n) + n) % n
                           : (((r + 1 - (g - (n - 1))) % n) + n) % n;
      st.src_offset = chunk_bound(count, n, c);
      st.dst_offset = st.src_offset;
      st.count = chunk_bound(count, n, c + 1) - st.src_offset;
      st.reduce = reduce;
      st.round = g;
      if (g > 0) {
        // The sender forwards what it received last round from its left
        // neighbour.
        st.deps.push_back((g - 1) * n + (r - 1 + n) % n);
      }
      dag.steps.push_back(std::move(st));
    }
  }
  return dag;
}

StepDag rs_ag_allreduce(int ranks, double bytes, std::size_t count) {
  if (!is_pow2(ranks)) {
    // Recursive halving needs a power of two; fall back to the ring
    // decomposition but keep the requested label so callers see which
    // algorithm they asked for.
    StepDag dag = ring_allreduce(ranks, bytes, count);
    dag.algorithm = Algorithm::kRecursive;
    return dag;
  }
  StepDag dag;
  dag.collective = "allreduce";
  dag.algorithm = Algorithm::kRecursive;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes <= 0.0) {
    return dag;
  }
  const int n = ranks;
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;

  // Per-rank owned element segment [lo, hi) and the index of the last
  // step that wrote into the rank's buffer (the receive of the previous
  // round) for DAG dependencies.
  std::vector<std::size_t> lo(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> hi(static_cast<std::size_t>(n), count);
  std::vector<int> last(static_cast<std::size_t>(n), -1);

  // Reduce-scatter: recursive halving.  Round j pairs r with r^dist and
  // each sends the half of its segment the partner keeps.
  double vol = bytes * 0.5;
  for (int j = 0; j < rounds; ++j) {
    const int dist = n >> (j + 1);
    const std::vector<std::size_t> cur_lo = lo;
    const std::vector<std::size_t> cur_hi = hi;
    const std::vector<int> cur_last = last;
    for (int r = 0; r < n; ++r) {
      const int p = r ^ dist;
      const std::size_t l = cur_lo[static_cast<std::size_t>(r)];
      const std::size_t h = cur_hi[static_cast<std::size_t>(r)];
      const std::size_t mid = l + (h - l) / 2;
      Step st;
      st.src = r;
      st.dst = p;
      st.bytes = vol;
      if ((r & dist) == 0) {  // keep lower half, send upper
        st.src_offset = mid;
        st.count = h - mid;
        lo[static_cast<std::size_t>(r)] = l;
        hi[static_cast<std::size_t>(r)] = mid;
      } else {  // keep upper half, send lower
        st.src_offset = l;
        st.count = mid - l;
        lo[static_cast<std::size_t>(r)] = mid;
        hi[static_cast<std::size_t>(r)] = h;
      }
      st.dst_offset = st.src_offset;
      st.reduce = true;
      st.round = j;
      if (cur_last[static_cast<std::size_t>(r)] >= 0) {
        st.deps.push_back(cur_last[static_cast<std::size_t>(r)]);
      }
      if (cur_last[static_cast<std::size_t>(p)] >= 0 && p != r) {
        st.deps.push_back(cur_last[static_cast<std::size_t>(p)]);
      }
      last[static_cast<std::size_t>(p)] = static_cast<int>(dag.steps.size());
      dag.steps.push_back(std::move(st));
    }
    vol *= 0.5;
  }

  // All-gather: recursive doubling, mirrored.  Each rank sends its whole
  // owned segment; partners merge into contiguous unions.
  vol = bytes / static_cast<double>(n);
  for (int k = 0; k < rounds; ++k) {
    const int dist = 1 << k;
    const std::vector<std::size_t> cur_lo = lo;
    const std::vector<std::size_t> cur_hi = hi;
    const std::vector<int> cur_last = last;
    for (int r = 0; r < n; ++r) {
      const int p = r ^ dist;
      Step st;
      st.src = r;
      st.dst = p;
      st.bytes = vol;
      st.src_offset = cur_lo[static_cast<std::size_t>(r)];
      st.dst_offset = st.src_offset;
      st.count = cur_hi[static_cast<std::size_t>(r)] -
                 cur_lo[static_cast<std::size_t>(r)];
      st.reduce = false;
      st.round = rounds + k;
      if (cur_last[static_cast<std::size_t>(r)] >= 0) {
        st.deps.push_back(cur_last[static_cast<std::size_t>(r)]);
      }
      if (cur_last[static_cast<std::size_t>(p)] >= 0) {
        st.deps.push_back(cur_last[static_cast<std::size_t>(p)]);
      }
      last[static_cast<std::size_t>(p)] = static_cast<int>(dag.steps.size());
      dag.steps.push_back(std::move(st));
      lo[static_cast<std::size_t>(r)] =
          std::min(cur_lo[static_cast<std::size_t>(r)],
                   cur_lo[static_cast<std::size_t>(p)]);
      hi[static_cast<std::size_t>(r)] =
          std::max(cur_hi[static_cast<std::size_t>(r)],
                   cur_hi[static_cast<std::size_t>(p)]);
    }
    vol *= 2.0;
  }
  return dag;
}

namespace {

/// Binomial-tree reduce to rank 0 appended to `dag`; `last[r]` tracks
/// the last step touching rank r's buffer for dependency wiring.
void append_tree_reduce(StepDag& dag, int n, double bytes, std::size_t count,
                        std::vector<int>& last, int round0) {
  int round = round0;
  for (int dist = 1; dist < n; dist *= 2, ++round) {
    for (int r = 0; r + dist < n; r += 2 * dist) {
      Step st;
      st.src = r + dist;
      st.dst = r;
      st.bytes = bytes;
      st.count = count;
      st.reduce = true;
      st.round = round;
      if (last[static_cast<std::size_t>(st.src)] >= 0) {
        st.deps.push_back(last[static_cast<std::size_t>(st.src)]);
      }
      if (last[static_cast<std::size_t>(st.dst)] >= 0) {
        st.deps.push_back(last[static_cast<std::size_t>(st.dst)]);
      }
      const int idx = static_cast<int>(dag.steps.size());
      last[static_cast<std::size_t>(st.src)] = idx;
      last[static_cast<std::size_t>(st.dst)] = idx;
      dag.steps.push_back(std::move(st));
    }
  }
}

/// Binomial-tree broadcast from rank 0 appended to `dag`.
void append_tree_bcast(StepDag& dag, int n, double bytes, std::size_t count,
                       std::vector<int>& last, int round0) {
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  int round = round0;
  for (int dist = 1 << (rounds - 1); dist >= 1; dist /= 2, ++round) {
    for (int r = 0; r + dist < n; r += 2 * dist) {
      Step st;
      st.src = r;
      st.dst = r + dist;
      st.bytes = bytes;
      st.count = count;
      st.reduce = false;
      st.round = round;
      if (last[static_cast<std::size_t>(st.src)] >= 0) {
        st.deps.push_back(last[static_cast<std::size_t>(st.src)]);
      }
      if (last[static_cast<std::size_t>(st.dst)] >= 0) {
        st.deps.push_back(last[static_cast<std::size_t>(st.dst)]);
      }
      const int idx = static_cast<int>(dag.steps.size());
      last[static_cast<std::size_t>(st.src)] = idx;
      last[static_cast<std::size_t>(st.dst)] = idx;
      dag.steps.push_back(std::move(st));
    }
  }
}

}  // namespace

StepDag tree_reduce(int ranks, double bytes, std::size_t count) {
  StepDag dag;
  dag.collective = "reduce";
  dag.algorithm = Algorithm::kTree;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes <= 0.0) {
    return dag;
  }
  std::vector<int> last(static_cast<std::size_t>(ranks), -1);
  append_tree_reduce(dag, ranks, bytes, count, last, 0);
  return dag;
}

StepDag tree_bcast(int ranks, double bytes, std::size_t count) {
  StepDag dag;
  dag.collective = "bcast";
  dag.algorithm = Algorithm::kTree;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes <= 0.0) {
    return dag;
  }
  std::vector<int> last(static_cast<std::size_t>(ranks), -1);
  append_tree_bcast(dag, ranks, bytes, count, last, 0);
  return dag;
}

StepDag tree_allreduce(int ranks, double bytes, std::size_t count) {
  StepDag dag;
  dag.collective = "allreduce";
  dag.algorithm = Algorithm::kTree;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes <= 0.0) {
    return dag;
  }
  int rounds = 0;
  while ((1 << rounds) < ranks) ++rounds;
  std::vector<int> last(static_cast<std::size_t>(ranks), -1);
  append_tree_reduce(dag, ranks, bytes, count, last, 0);
  // The shared last[] makes the first broadcast send depend on the final
  // reduce into rank 0.
  append_tree_bcast(dag, ranks, bytes, count, last, rounds);
  return dag;
}

StepDag linear_gather(int ranks, double bytes_per_rank, std::size_t count) {
  StepDag dag;
  dag.collective = "gather";
  dag.algorithm = Algorithm::kTree;
  dag.ranks = ranks;
  if (ranks <= 1 || bytes_per_rank <= 0.0) {
    return dag;
  }
  // No deps: the root's RX lane serializes the arrivals.
  for (int r = 1; r < ranks; ++r) {
    Step st;
    st.src = r;
    st.dst = 0;
    st.bytes = bytes_per_rank;
    st.dst_offset = static_cast<std::size_t>(r) * count;
    st.count = count;
    st.round = 0;
    dag.steps.push_back(std::move(st));
  }
  return dag;
}

StepDag allreduce_dag(Algorithm alg, int ranks, double bytes,
                      std::size_t count) {
  switch (alg) {
    case Algorithm::kRing:
      return ring_allreduce(ranks, bytes, count);
    case Algorithm::kRecursive:
      return rs_ag_allreduce(ranks, bytes, count);
    case Algorithm::kTree:
      return tree_allreduce(ranks, bytes, count);
  }
  throw std::runtime_error("allreduce_dag: unknown algorithm");
}

StepDag split_chunks(const StepDag& dag, double max_chunk_bytes) {
  if (max_chunk_bytes <= 0.0) {
    return dag;
  }
  StepDag out;
  out.collective = dag.collective;
  out.algorithm = dag.algorithm;
  out.ranks = dag.ranks;
  // Last sub-step index of each original step, for dependency remapping.
  std::vector<int> last_piece(dag.steps.size(), -1);
  for (std::size_t i = 0; i < dag.steps.size(); ++i) {
    const Step& st = dag.steps[i];
    const int pieces =
        st.bytes > max_chunk_bytes
            ? static_cast<int>(std::ceil(st.bytes / max_chunk_bytes))
            : 1;
    const double piece_bytes = st.bytes / static_cast<double>(pieces);
    for (int j = 0; j < pieces; ++j) {
      Step p = st;
      p.bytes = piece_bytes;
      const std::size_t lo = chunk_bound(st.count, pieces, j);
      p.src_offset = st.src_offset + lo;
      p.dst_offset = st.dst_offset + lo;
      p.count = chunk_bound(st.count, pieces, j + 1) - lo;
      p.deps.clear();
      if (j == 0) {
        for (const int d : st.deps) {
          p.deps.push_back(last_piece[static_cast<std::size_t>(d)]);
        }
      } else {
        p.deps.push_back(static_cast<int>(out.steps.size()) - 1);
      }
      out.steps.push_back(std::move(p));
    }
    last_piece[i] = static_cast<int>(out.steps.size()) - 1;
  }
  return out;
}

// --- scheduling -------------------------------------------------------------

StepScheduler::StepScheduler(const Engine& engine, const StepDag& dag,
                             const RunOptions& opt)
    : engine_(engine),
      dag_(dag),
      opt_(opt),
      faulty_(opt.faults != nullptr && opt.faults->armed()),
      lanes_(opt.epoch) {
  seconds_.reserve(dag.steps.size());
}

double StepScheduler::place_next() {
  const Topology& topo = engine_.topology();
  const int n_nics = topo.n_nics();
  const std::size_t i = placed();
  if (i >= dag_.steps.size()) {
    throw std::runtime_error("StepScheduler: all steps already placed");
  }
  const Step& st = dag_.steps[i];
  sched::LaneOp op;
  double t = topo.step_seconds(st.src, st.dst, st.bytes);
  if (faulty_) {
    // The fault draws come from per-(kind, site) counter streams, so
    // drawing per placement (instead of all up front) reads the exact
    // same values: per-site draw order is the step order either way.
    const std::string edge =
        std::to_string(st.src) + ">" + std::to_string(st.dst);
    const double factor =
        opt_.faults->link_degrade_factor(opt_.site + "/link/" + edge);
    FaultNote note;
    note.step = i;
    if (factor > 1.0) {
      note.extra = t * (factor - 1.0);
      note.site = opt_.site + "/link/" + edge;
      t *= factor;
    }
    note.probe = opt_.faults->chunk_loss(opt_.site + "/chunk/" + edge, t);
    if (note.probe.failures > 0) {
      op.lead = note.probe.penalty;
      if (note.site.empty()) {
        note.site = opt_.site + "/chunk/" + edge;
      }
    }
    if (note.extra > 0.0 || note.probe.failures > 0) {
      notes_.push_back(std::move(note));
    }
  }
  op.seconds = t;
  if (topo.same_node(st.src, st.dst)) {
    op.lanes = {2 * n_nics + 2 * st.src, 2 * n_nics + 2 * st.dst + 1};
  } else {
    op.lanes = {2 * topo.nic_of(st.src), 2 * topo.nic_of(st.dst) + 1};
  }
  op.deps = st.deps;
  seconds_.push_back(t);
  const int idx = lanes_.push(op);
  return lanes_.end(idx);
}

ScheduleResult StepScheduler::finish() {
  if (!done()) {
    throw std::runtime_error("StepScheduler: finish() before all steps");
  }
  const Topology& topo = engine_.topology();
  const int n_nics = topo.n_nics();

  if (opt_.tracer != nullptr) {
    const std::string name = std::string("comm_") + dag_.collective + "_" +
                             to_string(dag_.algorithm);
    for (std::size_t i = 0; i < dag_.steps.size(); ++i) {
      const Step& st = dag_.steps[i];
      const bool intra = topo.same_node(st.src, st.dst);
      if (intra && !opt_.trace_intra) {
        continue;
      }
      const obs::SpanId id = opt_.tracer->record_at(
          name, "comm", lanes_.start(static_cast<int>(i)), seconds_[i],
          /*backend=*/{}, nullptr, /*logged=*/false);
      opt_.tracer->add_counter(id, "bytes", st.bytes);
      opt_.tracer->add_counter(id, "src", st.src);
      opt_.tracer->add_counter(id, "dst", st.dst);
      opt_.tracer->add_counter(id, "round", st.round);
      opt_.tracer->set_stream(
          id, opt_.lane_base +
                  (intra ? n_nics + st.src : topo.nic_of(st.src)));
    }
  }

  if (faulty_) {
    const FaultNote* dead = nullptr;
    for (const FaultNote& note : notes_) {
      if (note.extra > 0.0) {
        opt_.faults->note_straggler(
            note.site, lanes_.start(static_cast<int>(note.step)),
            note.extra);
      }
      if (note.probe.failures > 0) {
        // The retry penalty sits on the step's lanes just ahead of it.
        opt_.faults->note_async_retries(
            fault::FaultKind::kChunkLoss, note.site,
            lanes_.start(static_cast<int>(note.step)) - note.probe.penalty,
            note.probe);
      }
      if (note.probe.persistent && dead == nullptr) {
        dead = &note;
      }
    }
    if (dead != nullptr) {
      throw fault::PersistentFaultError(fault::FaultKind::kChunkLoss,
                                        dead->site, dead->probe.failures);
    }
  }

  ScheduleResult out;
  out.start.resize(dag_.steps.size());
  out.end.resize(dag_.steps.size());
  for (std::size_t i = 0; i < dag_.steps.size(); ++i) {
    out.start[i] = lanes_.start(static_cast<int>(i));
    out.end[i] = lanes_.end(static_cast<int>(i));
  }
  out.makespan = lanes_.makespan() - opt_.epoch;
  return out;
}

ScheduleResult Engine::schedule(const StepDag& dag,
                                const RunOptions& opt) const {
  StepScheduler cursor(*this, dag, opt);
  while (!cursor.done()) {
    cursor.place_next();
  }
  return cursor.finish();
}

double Engine::allreduce_seconds(double bytes, Algorithm alg,
                                 const RunOptions& opt) const {
  return schedule(split_chunks(allreduce_dag(alg, topo_.n_ranks(), bytes),
                               opt.max_chunk_bytes),
                  opt)
      .makespan;
}

double Engine::bcast_seconds(double bytes, const RunOptions& opt) const {
  return schedule(
             split_chunks(tree_bcast(topo_.n_ranks(), bytes),
                          opt.max_chunk_bytes),
             opt)
      .makespan;
}

double Engine::reduce_seconds(double bytes, const RunOptions& opt) const {
  return schedule(
             split_chunks(tree_reduce(topo_.n_ranks(), bytes),
                          opt.max_chunk_bytes),
             opt)
      .makespan;
}

double Engine::gather_seconds(double bytes_per_rank,
                              const RunOptions& opt) const {
  return schedule(
             split_chunks(linear_gather(topo_.n_ranks(), bytes_per_rank),
                          opt.max_chunk_bytes),
             opt)
      .makespan;
}

// --- functional execution ---------------------------------------------------

void Engine::execute_payload(const StepDag& dag,
                             std::vector<std::vector<double>>& bufs) {
  for (const Step& st : dag.steps) {
    if (st.count == 0) {
      continue;
    }
    if (st.src < 0 || st.dst < 0 ||
        static_cast<std::size_t>(st.src) >= bufs.size() ||
        static_cast<std::size_t>(st.dst) >= bufs.size() || st.src == st.dst) {
      throw std::invalid_argument("execute_payload: step rank out of range");
    }
    const std::vector<double>& src = bufs[static_cast<std::size_t>(st.src)];
    std::vector<double>& dst = bufs[static_cast<std::size_t>(st.dst)];
    if (st.src_offset + st.count > src.size() ||
        st.dst_offset + st.count > dst.size()) {
      throw std::invalid_argument(
          "execute_payload: step span exceeds rank buffer");
    }
    if (st.reduce) {
      for (std::size_t i = 0; i < st.count; ++i) {
        dst[st.dst_offset + i] += src[st.src_offset + i];
      }
    } else {
      for (std::size_t i = 0; i < st.count; ++i) {
        dst[st.dst_offset + i] = src[st.src_offset + i];
      }
    }
  }
}

std::size_t Engine::check_world(
    const std::vector<std::vector<double>>& bufs) const {
  if (static_cast<int>(bufs.size()) != topo_.n_ranks()) {
    throw std::invalid_argument(
        "comm::Engine: expected " + std::to_string(topo_.n_ranks()) +
        " rank buffers, got " + std::to_string(bufs.size()));
  }
  const std::size_t m = bufs.front().size();
  for (const std::vector<double>& b : bufs) {
    if (b.size() != m) {
      throw std::invalid_argument(
          "comm::Engine: rank buffers must have equal length");
    }
  }
  return m;
}

std::vector<std::vector<double>> Engine::allreduce(
    const std::vector<std::vector<double>>& bufs, Algorithm alg,
    ScheduleResult* sched_out, const RunOptions& opt) const {
  const std::size_t m = check_world(bufs);
  const StepDag dag = allreduce_dag(alg, topo_.n_ranks(),
                                    static_cast<double>(m) * 8.0, m);
  ScheduleResult placed = schedule(dag, opt);
  std::vector<std::vector<double>> out = bufs;
  execute_payload(dag, out);
  if (sched_out != nullptr) {
    *sched_out = std::move(placed);
  }
  return out;
}

std::vector<std::vector<double>> Engine::bcast(
    const std::vector<std::vector<double>>& bufs, ScheduleResult* sched_out,
    const RunOptions& opt) const {
  const std::size_t m = check_world(bufs);
  const StepDag dag =
      tree_bcast(topo_.n_ranks(), static_cast<double>(m) * 8.0, m);
  ScheduleResult placed = schedule(dag, opt);
  std::vector<std::vector<double>> out = bufs;
  execute_payload(dag, out);
  if (sched_out != nullptr) {
    *sched_out = std::move(placed);
  }
  return out;
}

std::vector<double> Engine::gather(
    const std::vector<std::vector<double>>& bufs, ScheduleResult* sched_out,
    const RunOptions& opt) const {
  const std::size_t m = check_world(bufs);
  const StepDag dag =
      linear_gather(topo_.n_ranks(), static_cast<double>(m) * 8.0, m);
  ScheduleResult placed = schedule(dag, opt);
  std::vector<std::vector<double>> work = bufs;
  // The root's own block is already at offset 0; make room for the rest.
  work.front().resize(static_cast<std::size_t>(topo_.n_ranks()) * m, 0.0);
  execute_payload(dag, work);
  if (sched_out != nullptr) {
    *sched_out = std::move(placed);
  }
  return std::move(work.front());
}

}  // namespace toast::comm
