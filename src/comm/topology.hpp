#pragma once

// Cluster topology for the collective-communication engine (docs/MODEL.md
// §9): ranks packed onto nodes, nodes carrying a fixed set of Slingshot
// NICs, and two link classes — the inter-node NIC link and the (faster)
// intra-node shared-memory link.  Built from accel::NetworkSpec so the
// same published interconnect figures feed both the closed-form CommModel
// and the step-scheduled engine.
//
// Contention is structural, not parametric: every rank's inter-node
// traffic is pinned to one of its node's NICs (round-robin by local
// rank), and the engine serializes concurrent steps on a shared NIC lane.
// The `uniform()` layout — one rank per node, one NIC each — has no
// shared links anywhere; it is the congestion-free topology on which the
// engine reproduces the closed-form costs bit for bit.

#include <stdexcept>
#include <string>
#include <vector>

#include "accel/specs.hpp"

namespace toast::comm {

/// Structured topology-validation failure: carries the offending field
/// name and value so callers (the resilience manager, the job service)
/// can report *what* was invalid instead of pattern-matching message
/// text.  Derives std::invalid_argument, so existing catch sites keep
/// working unchanged.
class TopologyError : public std::invalid_argument {
 public:
  TopologyError(std::string field, long long value, const std::string& detail);
  /// Offending parameter ("survivors", "ranks_per_node", ...).
  const std::string& field() const { return field_; }
  /// Offending value (a duplicate/out-of-range rank, a bad count, ...).
  long long value() const { return value_; }

 private:
  std::string field_;
  long long value_;
};

/// One link class: per-message latency plus byte rate.
struct LinkSpec {
  double bandwidth = 0.0;  // bytes/s
  double latency = 0.0;    // seconds
};

class Topology {
 public:
  /// One rank per node, one NIC each: no shared links anywhere.  Every
  /// step costs `net.latency + bytes / net.bandwidth` — the closed-form
  /// CommModel's step, which is what makes the engine's uniform schedule
  /// its bit-for-bit equal.
  static Topology uniform(int ranks,
                          const accel::NetworkSpec& net =
                              accel::slingshot_spec());

  /// Packed cluster layout: `ranks_per_node` ranks per node sharing the
  /// node's `net.nics_per_node` NICs round-robin; traffic between ranks
  /// of one node uses the intra-node link and touches no NIC.
  static Topology cluster(int ranks, int ranks_per_node,
                          const accel::NetworkSpec& net =
                              accel::slingshot_spec());

  /// Rebuilt topology over the first `survivors` ranks after an elastic
  /// world shrink: same node packing and link classes, fewer ranks (dead
  /// ranks vacate their node slots, survivors keep their placement).
  /// Throws TopologyError when survivors is outside [1, n_ranks()].
  Topology shrink(int survivors) const;

  /// Survivor-set form: validates the set (rejects empty sets, duplicate
  /// ranks and ranks outside [0, n_ranks())) with a TopologyError naming
  /// the offending rank, then rebuilds over the survivors — they are
  /// re-packed densely in rank order, same packing and link classes.
  Topology shrink(const std::vector<int>& survivors) const;

  int n_ranks() const { return ranks_; }
  int ranks_per_node() const { return rpn_; }
  int nics_per_node() const { return nics_per_node_; }
  int n_nodes() const { return (ranks_ + rpn_ - 1) / rpn_; }
  int n_nics() const { return n_nodes() * nics_per_node_; }

  int node_of(int rank) const { return rank / rpn_; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  /// Global index of the NIC engine `rank`'s inter-node traffic uses.
  int nic_of(int rank) const {
    return node_of(rank) * nics_per_node_ + (rank % rpn_) % nics_per_node_;
  }
  /// True when no two ranks can ever share a NIC lane.
  bool congestion_free() const { return rpn_ <= nics_per_node_; }

  const LinkSpec& inter_link() const { return inter_; }
  const LinkSpec& intra_link() const { return intra_; }
  const LinkSpec& link(int src, int dst) const {
    return same_node(src, dst) ? intra_ : inter_;
  }

  /// Wire time of one point-to-point step between two ranks.
  double step_seconds(int src, int dst, double bytes) const {
    const LinkSpec& l = link(src, dst);
    return l.latency + bytes / l.bandwidth;
  }

 private:
  Topology(int ranks, int rpn, int nics_per_node, LinkSpec inter,
           LinkSpec intra);

  int ranks_;
  int rpn_;
  int nics_per_node_;
  LinkSpec inter_;
  LinkSpec intra_;
};

}  // namespace toast::comm
