#pragma once

// Job-level simulation: run the paper's benchmark for one configuration
// (problem size, backend, process count, MPS on/off, staging strategy)
// and report the modelled job runtime plus per-category timings.
//
// One representative rank is executed functionally (all ranks are
// statistically identical); the job model then composes:
//   - host lane: everything the rank's virtual clock accrued minus device
//     execution (serial framework, CPU kernels, dispatch, JIT, transfers),
//   - device lane: the device-execution seconds of the Q = procs-per-GPU
//     ranks sharing one GPU (with context-switch penalties when MPS is
//     off),
//   - overlap: oversubscription hides host gaps behind other processes'
//     kernels; with one process per device nothing overlaps,
//   - a final map-domain allreduce over the network model,
//   - paper-scale memory-footprint checks that produce the OOM failures
//     of Figure 4.

#include <map>
#include <string>

#include "accel/sim_device.hpp"
#include "accel/specs.hpp"
#include "accel/timelog.hpp"
#include "bench_model/calibration.hpp"
#include "comm/engine.hpp"
#include "config/schedule.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "bench_model/problem.hpp"
#include "core/pipeline.hpp"
#include "core/types.hpp"
#include "resilience/policy.hpp"
#include "sim/workflow.hpp"

namespace toast::mpisim {

/// How the end-of-run map allreduce is costed (kModel = closed-form
/// CommModel, the seed behaviour; kEngine = step-scheduled comm::Engine
/// on the cluster topology).  The canonical enum is the unified config
/// layer's comm-mode axis; mpisim re-exports it under its historical
/// name.
using CommMode = config::CommMode;

/// How the pipeline body of each observation is driven.  Not a schedule
/// axis (toastcase-schedule-v1 is pinned by its canonical hash): the
/// graph modes are execution strategies whose products must be bitwise
/// identical to staged replay, so they live beside `interpret`.
enum class PipelineRun {
  kStaged,        ///< Pipeline::exec staged replay (the historical path)
  kGraphSerial,   ///< async::Engine serial graph run (bitwise oracle)
  kGraphOverlap,  ///< async::Engine overlap graph run (placed makespan)
};

struct JobConfig {
  bench_model::ProblemSize problem;
  /// The unified schedule-space knob surface (docs/MODEL.md §12):
  /// backend slot, staging mode + prefetch/evict, stream count, comm
  /// mode/algorithm/chunk bound, solver async-comm mode, shape override
  /// and device flags (MPS, JAX preallocation).  Everything here used to
  /// be scattered per-field plumbing; the job threads it through
  /// ExecConfig, Pipeline and the comm engine unchanged, so one parsed
  /// `toastcase-schedule-v1` artifact configures the whole stack.
  config::ScheduleConfig schedule;
  /// Run the historical interpreter instead of the cached ExecutionPlan
  /// (the equivalence oracle the plan bench compares against; not a
  /// schedule axis — it must not change any result bit).
  bool interpret = false;
  /// Drive observation pipelines through the async task-graph engine
  /// (ignored when `interpret` is set).  Serial is the bitwise oracle;
  /// overlap re-times the executed tasks against the dependency
  /// structure, so runtime may shrink while products stay bitwise.
  PipelineRun pipeline_run = PipelineRun::kStaged;
  /// Override the workflow (0 keeps the calibrated default).
  int map_iterations = 0;
  /// Accelerator specification (defaults to the A100; the extension
  /// benchmark sweeps other targets).
  accel::DeviceSpec device_spec = accel::a100_spec();
  /// OpenMP-target dispatch overhead (compiler-runtime dependent).
  double omp_dispatch_overhead = 6.0e-6;
  /// Interconnect the end-of-run map allreduce is costed on (both the
  /// closed-form model and the engine topology build from it).
  accel::NetworkSpec network = accel::slingshot_spec();
  std::uint64_t seed = 2023;
  /// Deterministic fault schedule (empty plan = no fault layer at all;
  /// the run is bit-for-bit identical to a plan-free build).  Rank
  /// failures are handled at this level: a rank that dies during an
  /// observation is replaced and the lost work is recharged.
  fault::FaultPlan fault_plan = {};
  /// Declarative recovery policy (empty = disarmed pass-through).  With
  /// elastic recovery enabled, a rank failure that exhausts its replay
  /// budget shrinks the world instead: the comm topology is rebuilt over
  /// the survivors and the dead rank's observations are redistributed
  /// deterministically.
  resilience::Policy resilience_policy = {};

  JobConfig() = default;
  /// Convenience spelling for the common "problem + backend slot" case
  /// (keeps the historical `JobConfig{problem, Backend::kX}` sites).
  JobConfig(bench_model::ProblemSize p, core::Backend b)
      : problem(std::move(p)) {
    schedule.set_backend(b);
  }

  /// Resolved backend of the schedule's slot name.
  core::Backend backend_id() const { return schedule.backend_id(); }

  /// The problem with the schedule's shape axis applied: nonzero
  /// `shape.nodes` / `shape.procs_per_node` override the workload's own
  /// geometry (this is how the autotuner searches ranks × threads).
  bench_model::ProblemSize effective_problem() const {
    bench_model::ProblemSize p = problem;
    if (schedule.shape.nodes > 0) {
      p.nodes = schedule.shape.nodes;
    }
    if (schedule.shape.procs_per_node > 0) {
      p.procs_per_node = schedule.shape.procs_per_node;
    }
    return p;
  }
};

struct MemoryFootprint {
  double host_bytes_per_proc = 0.0;
  double device_bytes_per_proc = 0.0;
  double host_bytes_per_node = 0.0;
  double device_bytes_per_gpu = 0.0;
  bool host_oom = false;
  bool device_oom = false;
};

struct JobResult {
  bool oom = false;
  std::string oom_reason;
  /// Modelled job runtime (virtual seconds) at paper scale.
  double runtime = 0.0;
  /// Decomposition of the representative rank.
  double host_seconds = 0.0;
  double device_seconds = 0.0;      // one rank, exclusive
  double device_busy_per_gpu = 0.0; // all ranks sharing the GPU
  double transfer_seconds = 0.0;
  double comm_seconds = 0.0;
  /// Per-category virtual time of the representative rank.
  accel::TimeLog rank_log;
  /// Full span trace of the representative rank (per-kernel, per-operator
  /// and per-phase spans; export with obs::write_chrome_trace /
  /// write_metrics_json).
  std::vector<obs::Span> rank_spans;
  MemoryFootprint memory;
  /// Flat fault/recovery counters of the representative rank (empty when
  /// no fault fired); keys like "fault_transfer_retries".
  std::map<std::string, double> fault_counters;
  /// Plan/execute statistics of the representative rank's pipeline
  /// ("plan_cache_hits", "transfers_avoided", "peak_mapped_bytes", ...).
  /// Empty when cfg.interpret is set.
  std::map<std::string, double> plan_counters;
  /// Kernels that degraded to their CPU implementation mid-run.
  std::vector<std::string> degraded_kernels;
  /// Ranks still alive at the end of the job (total_procs() unless an
  /// elastic world shrink dropped some).
  int world_ranks = 0;
};

/// Paper-scale memory footprints for a configuration (also used alone by
/// the Figure 4 bench to annotate OOM points).
MemoryFootprint estimate_memory(const JobConfig& cfg);

/// Run the benchmark job.
JobResult run_benchmark_job(const JobConfig& cfg);

}  // namespace toast::mpisim
