#pragma once

// Simulated MPI layer: deterministic collective-cost models over a
// Slingshot-like network, plus a tiny functional communicator for ranks
// simulated within one process (used by the examples and tests to
// actually combine per-rank maps).
//
// CommModel is the *closed-form* view of the step-scheduled comm engine
// (comm::Engine, docs/MODEL.md §9).  Each method is written as the
// left-associative fold of its algorithm's per-round step cost — not the
// factored algebraic formula — so that on a congestion-free uniform
// topology the engine's scheduled makespan equals these values bit for
// bit.  CommModel survives as the engine's test oracle.

#include <cstdint>
#include <span>
#include <vector>

#include "accel/specs.hpp"

namespace toast::mpisim {

/// Cost model for the collectives the benchmark uses.
class CommModel {
 public:
  explicit CommModel(accel::NetworkSpec net = accel::slingshot_spec())
      : net_(net) {}

  /// Ring allreduce: 2 (n-1) rounds, each moving a 1/n chunk — the fold
  /// equals 2 (n-1)/n * bytes / bandwidth + 2 (n-1) * latency.
  double allreduce_seconds(double bytes, int ranks) const;
  /// Binomial-tree broadcast: ceil(log2 n) full-payload rounds.
  double bcast_seconds(double bytes, int ranks) const;
  /// Gather to root (root receives (n-1) chunks serially).
  double gather_seconds(double bytes_per_rank, int ranks) const;

 private:
  accel::NetworkSpec net_;
};

/// Functional in-process communicator: ranks deposit buffers, collectives
/// combine them.  Used where tests / examples need the *values*, not just
/// the cost.
class LocalComm {
 public:
  explicit LocalComm(int size) : size_(size) {}
  int size() const { return size_; }

  /// Sum contributions elementwise; one buffer per rank of this
  /// communicator, all equal length.  Throws std::invalid_argument when
  /// the contribution count does not match the communicator size or the
  /// buffer lengths disagree.
  std::vector<double> allreduce_sum(
      const std::vector<std::vector<double>>& contributions) const;

 private:
  int size_;
};

}  // namespace toast::mpisim
