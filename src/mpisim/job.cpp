#include "mpisim/job.hpp"

#include <algorithm>
#include <cmath>

#include "async/lower.hpp"
#include "core/context.hpp"
#include "kernels/jax.hpp"
#include "mpisim/comm.hpp"
#include "sim/satellite.hpp"

namespace toast::mpisim {

namespace {

int procs_per_gpu(const bench_model::ProblemSize& p) {
  return std::max(1, (p.procs_per_node + p.gpus_per_node - 1) /
                         p.gpus_per_node);
}

/// First Tracer stream id for comm-engine NIC lanes, clear of the sched
/// compute/copy stream ids the pipeline uses.
constexpr int kCommLaneBase = 16;

}  // namespace

MemoryFootprint estimate_memory(const JobConfig& cfg) {
  const auto p = cfg.effective_problem();
  const core::Backend backend = cfg.backend_id();
  const auto mem = bench_model::memory_model();
  MemoryFootprint f;

  const double rank_bytes =
      p.paper_total_bytes() / static_cast<double>(p.total_procs());
  const bool accel = core::is_accel(backend);

  f.host_bytes_per_proc =
      rank_bytes * mem.host_resident_fraction +
      (accel ? mem.host_overhead_gpu : mem.host_overhead_cpu);
  f.host_bytes_per_node =
      f.host_bytes_per_proc * static_cast<double>(p.procs_per_node);

  if (accel) {
    const double staged_obs =
        rank_bytes * mem.staged_fraction /
        static_cast<double>(std::max(1, p.observations_per_proc));
    if (backend == core::Backend::kJax) {
      // JAX holds whole-observation arrays in its pool.
      const double pool = cfg.schedule.device.jax_preallocate
                              ? 0.75 * cfg.device_spec.memory_bytes -
                                    mem.jax_context_bytes
                              : staged_obs * mem.jax_pool_overhead;
      f.device_bytes_per_proc = mem.jax_context_bytes +
                                std::max(pool, staged_obs);
      if (cfg.schedule.device.jax_preallocate && staged_obs > pool) {
        // Preallocated pool too small for the working set.
        f.device_bytes_per_proc = cfg.device_spec.memory_bytes * 2.0;
      }
    } else {
      // The OpenMP port streams bounded detector batches.
      f.device_bytes_per_proc =
          mem.omp_context_bytes +
          std::min(staged_obs, mem.omp_batch_bytes) * mem.omp_pool_overhead;
    }
    f.device_bytes_per_gpu = f.device_bytes_per_proc *
                             static_cast<double>(procs_per_gpu(p));
    f.device_oom = f.device_bytes_per_gpu > cfg.device_spec.memory_bytes;
  }
  f.host_oom = f.host_bytes_per_node > accel::milan_spec().memory_bytes;
  return f;
}

JobResult run_benchmark_job(const JobConfig& cfg) {
  JobResult result;
  const auto p = cfg.effective_problem();
  const core::Backend backend = cfg.backend_id();
  const auto fw = bench_model::framework_model();

  result.memory = estimate_memory(cfg);
  if (result.memory.device_oom) {
    result.oom = true;
    result.oom_reason = "device memory exceeded (" +
                        std::to_string(result.memory.device_bytes_per_gpu /
                                       1e9) +
                        " GB per GPU)";
    return result;
  }
  if (result.memory.host_oom) {
    result.oom = true;
    result.oom_reason = "host memory exceeded (" +
                        std::to_string(result.memory.host_bytes_per_node /
                                       1e9) +
                        " GB per node)";
    return result;
  }

  // --- representative rank, functional execution ------------------------
  core::ExecConfig ec;
  ec.schedule = cfg.schedule;
  ec.backend = backend;
  ec.threads = p.threads_per_proc();
  ec.socket_active_threads = p.cores_per_node;
  ec.sharing = accel::Sharing::kExclusive;  // composed at job level below
  ec.procs_per_gpu = 1;
  ec.work_scale = p.sample_scale();
  // Production maps are nside 512-class; ours run at p.nside.
  ec.map_scale = (512.0 / static_cast<double>(p.nside)) *
                 (512.0 / static_cast<double>(p.nside));
  ec.device_spec = cfg.device_spec;
  ec.omp_dispatch_overhead = cfg.omp_dispatch_overhead;
  ec.fault_plan = cfg.fault_plan;
  ec.resilience_policy = cfg.resilience_policy;
  core::ExecContext ctx(ec);
  resilience::Manager& rm = ctx.resilience();
  int world = p.total_procs();
  const obs::SpanId rank_span = ctx.tracer().begin(
      "rank:" + std::string(core::to_string(backend)), "rank",
      core::to_string(backend));

  // Fresh process: cold JIT caches, and the one-time accelerator bring-up
  // (CUDA context creation, runtime init) every GPU-enabled process pays.
  kernels::jax::clear_jit_caches();
  if (core::is_accel(backend)) {
    ctx.charge_serial("accel_init",
                      backend == core::Backend::kJax ? 1.2 : 0.8);
  }

  const auto fp = sim::hex_focalplane(p.actual_n_detectors, 37.0);
  core::Data data;
  {
    obs::ScopedSpan sim_span(ctx.tracer(), "simulate_observations", "phase");
    for (int ob = 0; ob < p.observations_per_proc; ++ob) {
      sim::ScanParams scan;
      scan.spin_period =
          static_cast<double>(p.actual_n_samples) / 37.0 / 6.0;
      data.observations.push_back(sim::simulate_satellite(
          "obs" + std::to_string(ob), fp, p.actual_n_samples, scan,
          cfg.seed + static_cast<std::uint64_t>(ob)));
    }
  }

  sim::WorkflowConfig wf;
  wf.nside = p.nside;
  wf.map_iterations =
      cfg.map_iterations > 0 ? cfg.map_iterations : fw.map_iterations;
  auto pipeline =
      sim::make_benchmark_pipeline(wf, cfg.schedule.staging.mode);
  pipeline.set_schedule(cfg.schedule);
  core::PlanStats graph_stats;
  auto run_pipeline = [&](core::Observation& ob) {
    if (cfg.interpret) {
      pipeline.exec_interpreted(ob, ctx);
    } else if (cfg.pipeline_run != PipelineRun::kStaged) {
      // Task-graph drive: the serial schedule is the bitwise oracle of
      // staged replay; overlap re-times against the dependency
      // structure, shrinking runtime while products stay bitwise.
      async::Options aopt;
      aopt.mode = cfg.pipeline_run == PipelineRun::kGraphOverlap
                      ? async::Mode::kOverlap
                      : async::Mode::kSerial;
      async::run_plan_async(pipeline, ob, ctx, graph_stats, aopt);
    } else {
      pipeline.exec(ob, ctx);
    }
  };
  if (!ctx.faults().armed()) {
    for (auto& ob : data.observations) {
      run_pipeline(ob);
    }
  } else {
    // Rank-failure model: a rank that dies mid-observation is replaced
    // and the replacement replays the lost observation.  The functional
    // work runs exactly once (replaying in-place kernels would
    // double-apply); what the failure costs — the lost fraction of the
    // observation plus the replacement's bring-up — is charged to the
    // virtual clock as a logged fault span, bounded by the plan's retry
    // budget per observation.
    const double restart_seconds =
        core::is_accel(backend)
            ? (backend == core::Backend::kJax ? 1.2 : 0.8)
            : 0.1;
    resilience::RetrySpec plan_retry;
    plan_retry.max_attempts = cfg.fault_plan.retry.max_attempts;
    plan_retry.backoff_seconds = cfg.fault_plan.retry.backoff_seconds;
    plan_retry.backoff_multiplier = cfg.fault_plan.retry.backoff_multiplier;
    plan_retry.failed_fraction = cfg.fault_plan.retry.failed_fraction;
    for (auto& ob : data.observations) {
      const std::string site = "mpisim_rank:" + ob.name();
      const resilience::RetrySpec rs =
          rm.armed() ? rm.retry_for(site, plan_retry) : plan_retry;
      const int max_replays = std::max(1, rs.max_attempts);
      const double t0 = ctx.clock().now();
      run_pipeline(ob);
      const double obs_seconds = ctx.clock().now() - t0;
      int fired = 0;
      for (int replay = 0; replay < max_replays; ++replay) {
        if (!ctx.faults().rank_failure(site)) {
          break;
        }
        ++fired;
        const double lost =
            rs.failed_fraction * obs_seconds + restart_seconds;
        ctx.clock().advance(lost);
        const obs::SpanId id = ctx.tracer().record(
            "fault_rank_restart", "fault", lost,
            core::to_string(backend));
        ctx.tracer().add_counter(id, "observation_" + ob.name(), 1.0);
      }
      if (fired >= max_replays && rm.allow_shrink(world)) {
        // Elastic recovery: the replay budget is exhausted, so instead of
        // replacing the rank yet again the world drops it.  The comm
        // topology is rebuilt over the survivors below and the dead
        // rank's observations are redistributed deterministically — the
        // representative rank picks up its 1/survivors share.
        const int survivors = world - 1;
        rm.note_world_shrink(site, world, survivors);
        const double extra = obs_seconds *
                             static_cast<double>(p.observations_per_proc) /
                             static_cast<double>(survivors);
        rm.note_redistribute(site, extra, p.observations_per_proc);
        world = survivors;
      }
    }
  }

  // Serial framework time (I/O, distribution, bookkeeping) at paper scale.
  const double rank_samples =
      p.paper_total_samples / static_cast<double>(p.total_procs());
  ctx.charge_serial("framework_serial",
                    fw.serial_seconds_per_sample * rank_samples);
  ctx.tracer().end(rank_span);

  // --- job composition ----------------------------------------------------
  const double elapsed = ctx.clock().now();
  result.device_seconds = ctx.device().total_exec_seconds();
  result.host_seconds = elapsed - result.device_seconds;
  result.transfer_seconds =
      ctx.log().seconds("accel_data_update_device") +
      ctx.log().seconds("accel_data_update_host");
  result.rank_log = ctx.log();

  const int gpu_share = procs_per_gpu(p);
  double rank_runtime = elapsed;
  if (core::is_accel(backend)) {
    const double device_busy =
        result.device_seconds * static_cast<double>(gpu_share);
    result.device_busy_per_gpu = device_busy;
    if (!cfg.schedule.device.mps && gpu_share > 1) {
      // Without MPS the CUDA driver time-slices whole contexts.  The
      // pipeline interleaves host and device work so finely that each
      // process effectively holds the GPU through its pipeline section:
      // the Q processes on one device serialize, capping performance at
      // about one process per device (paper §3.1.2).
      const double serial_part = ctx.log().seconds("framework_serial") +
                                 ctx.log().seconds("accel_init");
      const double pipeline_part = elapsed - serial_part;
      const double switches =
          static_cast<double>(ctx.device().total_launches()) *
          static_cast<double>(gpu_share);
      rank_runtime = serial_part +
                     static_cast<double>(gpu_share) * pipeline_part +
                     switches * ctx.device().spec().context_switch_cost;
    } else {
      // PCIe is shared by the processes on one GPU (partial contention:
      // transfers are bursty at pipeline boundaries).
      const double host_lane =
          result.host_seconds +
          result.transfer_seconds * 0.4 * static_cast<double>(gpu_share - 1);
      // Oversubscription overlap: with Q processes per device, one
      // process's host gaps are hidden behind the others' kernels.
      const double hi = std::max(host_lane, device_busy);
      const double lo = std::min(host_lane, device_busy);
      rank_runtime = hi + lo / static_cast<double>(gpu_share);
    }
  }

  // Final map reduction across the job at paper scale (nside 512-class
  // production maps).
  const double paper_map_bytes = 12.0 * 512.0 * 512.0 * 3.0 * 8.0;
  // Collectives degradation ladder: once the policy escalates the
  // "collectives" domain, the step-scheduled engine gives way to the
  // closed-form CommModel (always over the surviving world).
  const bool engine_collectives =
      cfg.schedule.comm.mode == CommMode::kEngine &&
      rm.level("collectives") == 0;
  bool engine_done = false;
  if (engine_collectives) {
    // Step-scheduled allreduce on the packed cluster topology: per-step
    // chunk transfers on the ranks' shared NIC lanes, with link/chunk
    // fault hooks.  NIC-lane spans start above the compute/copy streams.
    // After an elastic shrink the topology is rebuilt over the survivors.
    comm::Topology topo = comm::Topology::cluster(
        p.total_procs(), p.procs_per_node, cfg.network);
    if (world < p.total_procs()) {
      topo = topo.shrink(world);
    }
    const comm::Engine engine(topo);
    comm::RunOptions copt;
    copt.epoch = ctx.clock().now();
    copt.tracer = &ctx.tracer();
    copt.lane_base = kCommLaneBase;
    // Single-node jobs would otherwise have nothing to show: intra-node
    // steps get lanes too (after the NIC block).
    copt.trace_intra = true;
    copt.site = "map_allreduce";
    copt.faults = &ctx.faults();
    copt.max_chunk_bytes = cfg.schedule.comm.chunk_bytes;
    if (rm.armed()) {
      try {
        result.comm_seconds = engine.allreduce_seconds(
            paper_map_bytes, cfg.schedule.comm.algorithm, copt);
        engine_done = true;
      } catch (const fault::PersistentFaultError&) {
        // Exhausted chunk-retry budget: report to the ladder and fall
        // back to the closed-form model below.
        rm.report_fault("collectives", "map_allreduce");
      }
    } else {
      result.comm_seconds = engine.allreduce_seconds(
          paper_map_bytes, cfg.schedule.comm.algorithm, copt);
      engine_done = true;
    }
  }
  if (!engine_done) {
    const CommModel comm(cfg.network);
    result.comm_seconds = comm.allreduce_seconds(paper_map_bytes, world);
  }
  const obs::SpanId comm_span = ctx.tracer().record_at(
      "map_allreduce", "comm", ctx.clock().now(), result.comm_seconds, "",
      nullptr, /*logged=*/false);
  ctx.tracer().add_counter(comm_span, "bytes", paper_map_bytes);
  ctx.tracer().add_counter(comm_span, "ranks", world);

  result.rank_spans = ctx.tracer().spans();
  result.fault_counters = ctx.faults().counters();
  for (const auto& [key, value] : rm.counters()) {
    result.fault_counters[key] += value;
  }
  result.world_ranks = world;
  if (!cfg.interpret) {
    // Graph-driven runs accumulate executor stats into graph_stats (the
    // pipeline only sees plan_for's cache traffic); fold them together.
    core::PlanStats ps = pipeline.plan_stats();
    ps.replans += graph_stats.replans;
    ps.transfers_avoided += graph_stats.transfers_avoided;
    ps.evictions += graph_stats.evictions;
    ps.prefetched_uploads += graph_stats.prefetched_uploads;
    ps.peak_mapped_bytes =
        std::max(ps.peak_mapped_bytes, graph_stats.peak_mapped_bytes);
    result.plan_counters = {
        {"plan_cache_hits", ps.cache_hits},
        {"plan_cache_misses", ps.cache_misses},
        {"plan_replans", ps.replans},
        {"transfers_avoided", ps.transfers_avoided},
        {"evictions", ps.evictions},
        {"prefetched_uploads", ps.prefetched_uploads},
        {"peak_mapped_bytes", ps.peak_mapped_bytes},
    };
  }
  result.degraded_kernels.assign(ctx.faults().degraded_kernels().begin(),
                                 ctx.faults().degraded_kernels().end());
  result.runtime = rank_runtime + result.comm_seconds;
  return result;
}

}  // namespace toast::mpisim
