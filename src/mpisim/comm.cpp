#include "mpisim/comm.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace toast::mpisim {

// Each model below accumulates its rounds with the same left-associative
// fold the step-scheduled engine performs on a uniform topology, so the
// two agree bitwise — see the header note and docs/MODEL.md §9.

double CommModel::allreduce_seconds(double bytes, int ranks) const {
  if (ranks <= 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double chunk = bytes / static_cast<double>(ranks);
  const double step = net_.latency + chunk / net_.bandwidth;
  double t = 0.0;
  for (int r = 0; r < 2 * (ranks - 1); ++r) {
    t += step;
  }
  return t;
}

double CommModel::bcast_seconds(double bytes, int ranks) const {
  if (ranks <= 1 || bytes <= 0.0) {
    return 0.0;
  }
  int rounds = 0;
  while ((1 << rounds) < ranks) ++rounds;
  const double step = net_.latency + bytes / net_.bandwidth;
  double t = 0.0;
  for (int r = 0; r < rounds; ++r) {
    t += step;
  }
  return t;
}

double CommModel::gather_seconds(double bytes_per_rank, int ranks) const {
  if (ranks <= 1 || bytes_per_rank <= 0.0) {
    return 0.0;
  }
  const double step = net_.latency + bytes_per_rank / net_.bandwidth;
  double t = 0.0;
  for (int r = 0; r < ranks - 1; ++r) {
    t += step;
  }
  return t;
}

std::vector<double> LocalComm::allreduce_sum(
    const std::vector<std::vector<double>>& contributions) const {
  if (static_cast<int>(contributions.size()) != size_) {
    throw std::invalid_argument(
        "allreduce_sum: expected one contribution per rank (" +
        std::to_string(size_) + "), got " +
        std::to_string(contributions.size()));
  }
  if (contributions.empty()) {
    return {};
  }
  const std::size_t n = contributions.front().size();
  std::vector<double> out(n, 0.0);
  for (const auto& c : contributions) {
    if (c.size() != n) {
      throw std::invalid_argument("allreduce_sum: length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += c[i];
    }
  }
  return out;
}

}  // namespace toast::mpisim
