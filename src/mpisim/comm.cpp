#include "mpisim/comm.hpp"

#include <cmath>
#include <stdexcept>

namespace toast::mpisim {

double CommModel::allreduce_seconds(double bytes, int ranks) const {
  if (ranks <= 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(ranks);
  return 2.0 * (n - 1.0) / n * bytes / net_.bandwidth +
         2.0 * (n - 1.0) * net_.latency;
}

double CommModel::bcast_seconds(double bytes, int ranks) const {
  if (ranks <= 1 || bytes <= 0.0) {
    return 0.0;
  }
  const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
  return rounds * (net_.latency + bytes / net_.bandwidth);
}

double CommModel::gather_seconds(double bytes_per_rank, int ranks) const {
  if (ranks <= 1 || bytes_per_rank <= 0.0) {
    return 0.0;
  }
  const double n = static_cast<double>(ranks);
  return (n - 1.0) * (net_.latency + bytes_per_rank / net_.bandwidth);
}

std::vector<double> LocalComm::allreduce_sum(
    const std::vector<std::vector<double>>& contributions) {
  if (contributions.empty()) {
    return {};
  }
  const std::size_t n = contributions.front().size();
  std::vector<double> out(n, 0.0);
  for (const auto& c : contributions) {
    if (c.size() != n) {
      throw std::invalid_argument("allreduce_sum: length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += c[i];
    }
  }
  return out;
}

}  // namespace toast::mpisim
