#include "qarray/qarray.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace toast::qarray {

double norm(const Quat& q) {
  return std::sqrt(q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]);
}

Quat normalize(const Quat& q) {
  const double n = norm(q);
  if (n == 0.0) {
    return Quat{0.0, 0.0, 0.0, 1.0};
  }
  const double inv = 1.0 / n;
  return Quat{q[0] * inv, q[1] * inv, q[2] * inv, q[3] * inv};
}

Quat mult(const Quat& p, const Quat& q) {
  // Scalar-last Hamilton product.
  return Quat{
      p[3] * q[0] + p[0] * q[3] + p[1] * q[2] - p[2] * q[1],
      p[3] * q[1] - p[0] * q[2] + p[1] * q[3] + p[2] * q[0],
      p[3] * q[2] + p[0] * q[1] - p[1] * q[0] + p[2] * q[3],
      p[3] * q[3] - p[0] * q[0] - p[1] * q[1] - p[2] * q[2],
  };
}

Quat conj(const Quat& q) { return Quat{-q[0], -q[1], -q[2], q[3]}; }

Vec3 rotate(const Quat& q, const Vec3& v) {
  // v' = v + 2 * qv x (qv x v + w v), the standard expansion avoiding two
  // full quaternion products.
  const double qx = q[0], qy = q[1], qz = q[2], qw = q[3];
  const double tx = 2.0 * (qy * v[2] - qz * v[1]);
  const double ty = 2.0 * (qz * v[0] - qx * v[2]);
  const double tz = 2.0 * (qx * v[1] - qy * v[0]);
  return Vec3{
      v[0] + qw * tx + (qy * tz - qz * ty),
      v[1] + qw * ty + (qz * tx - qx * tz),
      v[2] + qw * tz + (qx * ty - qy * tx),
  };
}

Quat from_axisangle(const Vec3& axis, double angle) {
  const double half = 0.5 * angle;
  const double s = std::sin(half);
  return Quat{axis[0] * s, axis[1] * s, axis[2] * s, std::cos(half)};
}

Quat from_iso_angles(double theta, double phi, double psi) {
  // R_z(phi) * R_y(theta) * R_z(psi) in quaternion form.
  const Quat qphi = from_axisangle(Vec3{0.0, 0.0, 1.0}, phi);
  const Quat qtheta = from_axisangle(Vec3{0.0, 1.0, 0.0}, theta);
  const Quat qpsi = from_axisangle(Vec3{0.0, 0.0, 1.0}, psi);
  return mult(mult(qphi, qtheta), qpsi);
}

void to_iso_angles(const Quat& qin, double& theta, double& phi, double& psi) {
  const Quat q = normalize(qin);
  // Direction of the rotated z-axis gives theta/phi.
  const Vec3 dir = rotate(q, Vec3{0.0, 0.0, 1.0});
  theta = std::acos(std::clamp(dir[2], -1.0, 1.0));
  phi = std::atan2(dir[1], dir[0]);
  // Orientation: rotated x-axis projected on the tangent plane gives psi.
  const Vec3 xax = rotate(q, Vec3{1.0, 0.0, 0.0});
  // Local meridian (d/dtheta) and parallel (d/dphi) unit vectors.
  const double ct = std::cos(theta), st = std::sin(theta);
  const double cp = std::cos(phi), sp = std::sin(phi);
  const Vec3 etheta{ct * cp, ct * sp, -st};
  const Vec3 ephi{-sp, cp, 0.0};
  const double x = xax[0] * etheta[0] + xax[1] * etheta[1] + xax[2] * etheta[2];
  const double y = xax[0] * ephi[0] + xax[1] * ephi[1] + xax[2] * ephi[2];
  psi = std::atan2(y, x);
}

Quat slerp(const Quat& a, const Quat& b, double t) {
  double cosom = a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
  Quat bb = b;
  if (cosom < 0.0) {
    cosom = -cosom;
    for (auto& c : bb) c = -c;
  }
  double s0 = 1.0 - t;
  double s1 = t;
  if (cosom < 0.9995) {
    const double omega = std::acos(std::clamp(cosom, -1.0, 1.0));
    const double so = std::sin(omega);
    s0 = std::sin(s0 * omega) / so;
    s1 = std::sin(s1 * omega) / so;
  }
  return normalize(Quat{
      s0 * a[0] + s1 * bb[0],
      s0 * a[1] + s1 * bb[1],
      s0 * a[2] + s1 * bb[2],
      s0 * a[3] + s1 * bb[3],
  });
}

Quat from_vectors(const Vec3& a, const Vec3& b) {
  const double dot = a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
  Vec3 cross{a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
             a[0] * b[1] - a[1] * b[0]};
  if (dot < -1.0 + 1e-12) {
    // Antiparallel: rotate pi about any axis perpendicular to a.
    Vec3 axis = std::abs(a[0]) < 0.9 ? Vec3{1.0, 0.0, 0.0}
                                     : Vec3{0.0, 1.0, 0.0};
    // Make perpendicular via Gram-Schmidt.
    const double proj = axis[0] * a[0] + axis[1] * a[1] + axis[2] * a[2];
    for (int i = 0; i < 3; ++i) {
      axis[static_cast<std::size_t>(i)] -=
          proj * a[static_cast<std::size_t>(i)];
    }
    const double n = std::sqrt(axis[0] * axis[0] + axis[1] * axis[1] +
                               axis[2] * axis[2]);
    return Quat{axis[0] / n, axis[1] / n, axis[2] / n, 0.0};
  }
  return normalize(Quat{cross[0], cross[1], cross[2], 1.0 + dot});
}

std::array<double, 9> to_rotmat(const Quat& q) {
  const double x = q[0], y = q[1], z = q[2], w = q[3];
  return {1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z),
          2.0 * (x * z + w * y),
          2.0 * (x * y + w * z),       1.0 - 2.0 * (x * x + z * z),
          2.0 * (y * z - w * x),
          2.0 * (x * z - w * y),       2.0 * (y * z + w * x),
          1.0 - 2.0 * (x * x + y * y)};
}

void mult_many(std::span<const double> p, std::span<const double> q,
               std::span<double> out) {
  assert(p.size() == q.size() && p.size() == out.size());
  const std::size_t n = p.size() / 4;
  for (std::size_t i = 0; i < n; ++i) {
    const Quat pi{p[4 * i], p[4 * i + 1], p[4 * i + 2], p[4 * i + 3]};
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Quat r = mult(pi, qi);
    out[4 * i] = r[0];
    out[4 * i + 1] = r[1];
    out[4 * i + 2] = r[2];
    out[4 * i + 3] = r[3];
  }
}

void mult_one_many(const Quat& p, std::span<const double> q,
                   std::span<double> out) {
  assert(q.size() == out.size());
  const std::size_t n = q.size() / 4;
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Quat r = mult(p, qi);
    out[4 * i] = r[0];
    out[4 * i + 1] = r[1];
    out[4 * i + 2] = r[2];
    out[4 * i + 3] = r[3];
  }
}

void mult_many_one(std::span<const double> p, const Quat& q,
                   std::span<double> out) {
  assert(p.size() == out.size());
  const std::size_t n = p.size() / 4;
  for (std::size_t i = 0; i < n; ++i) {
    const Quat pi{p[4 * i], p[4 * i + 1], p[4 * i + 2], p[4 * i + 3]};
    const Quat r = mult(pi, q);
    out[4 * i] = r[0];
    out[4 * i + 1] = r[1];
    out[4 * i + 2] = r[2];
    out[4 * i + 3] = r[3];
  }
}

void rotate_many_one(std::span<const double> q, const Vec3& v,
                     std::span<double> out) {
  const std::size_t n = q.size() / 4;
  assert(out.size() == 3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Vec3 r = rotate(qi, v);
    out[3 * i] = r[0];
    out[3 * i + 1] = r[1];
    out[3 * i + 2] = r[2];
  }
}

void normalize_inplace(std::span<double> q) {
  const std::size_t n = q.size() / 4;
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Quat r = normalize(qi);
    q[4 * i] = r[0];
    q[4 * i + 1] = r[1];
    q[4 * i + 2] = r[2];
    q[4 * i + 3] = r[3];
  }
}

}  // namespace toast::qarray
