#pragma once

// Quaternion array operations used by the pointing-expansion kernels.
//
// Conventions follow TOAST's qarray module: a quaternion is stored as four
// contiguous doubles (x, y, z, w) with the scalar part LAST.  Array variants
// operate on n contiguous quaternions (row-major n x 4).

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace toast::qarray {

using Quat = std::array<double, 4>;
using Vec3 = std::array<double, 3>;

/// Euclidean norm of a quaternion.
double norm(const Quat& q);

/// Return q scaled to unit norm.  A zero quaternion yields the identity.
Quat normalize(const Quat& q);

/// Hamilton product r = p * q (scalar-last convention).
Quat mult(const Quat& p, const Quat& q);

/// Conjugate (inverse for unit quaternions).
Quat conj(const Quat& q);

/// Rotate vector v by unit quaternion q.
Vec3 rotate(const Quat& q, const Vec3& v);

/// Quaternion representing a rotation of `angle` radians about unit `axis`.
Quat from_axisangle(const Vec3& axis, double angle);

/// Rotation taking the z-axis to the direction given by ISO spherical
/// coordinates (theta = colatitude, phi = longitude), then rotating by
/// `psi` about the resulting direction (position angle).
Quat from_iso_angles(double theta, double phi, double psi);

/// Recover (theta, phi, psi) from a unit quaternion produced as above.
void to_iso_angles(const Quat& q, double& theta, double& phi, double& psi);

/// Spherical linear interpolation between unit quaternions (t in [0,1]).
Quat slerp(const Quat& a, const Quat& b, double t);

/// The rotation taking unit vector `a` onto unit vector `b` (shortest
/// arc).  Antiparallel inputs rotate about any perpendicular axis.
Quat from_vectors(const Vec3& a, const Vec3& b);

/// 3x3 rotation matrix (row-major) of a unit quaternion.
std::array<double, 9> to_rotmat(const Quat& q);

// --- Array variants (n quaternions, contiguous n x 4 storage) ------------

/// out[i] = p[i] * q[i].  All spans must hold 4*n doubles.
void mult_many(std::span<const double> p, std::span<const double> q,
               std::span<double> out);

/// out[i] = p * q[i] for a fixed left operand.
void mult_one_many(const Quat& p, std::span<const double> q,
                   std::span<double> out);

/// out[i] = p[i] * q for a fixed right operand.
void mult_many_one(std::span<const double> p, const Quat& q,
                   std::span<double> out);

/// Rotate the single vector v by each quaternion; out holds 3*n doubles.
void rotate_many_one(std::span<const double> q, const Vec3& v,
                     std::span<double> out);

/// Normalize each quaternion in place.
void normalize_inplace(std::span<double> q);

}  // namespace toast::qarray
