#pragma once

// Host-side (CPU) performance model: converts a WorkEstimate into virtual
// seconds for an OpenMP-threaded kernel running on `threads` cores of a
// Milan-like socket.  Used for the CPU baseline implementation and for the
// "JAX CPU backend" mode (which restricts parallelism, see the paper §4.2).

#include "accel/specs.hpp"
#include "accel/work.hpp"

namespace toast::accel {

class HostModel {
 public:
  explicit HostModel(HostSpec spec = milan_spec()) : spec_(spec) {}

  const HostSpec& spec() const { return spec_; }

  /// Execution time of a kernel parallelized over `threads` cores.
  /// DRAM bandwidth is a socket-level resource: `socket_active_threads`
  /// says how many threads on the socket are competing for it in total
  /// (>= threads when several processes run on the node).
  double exec_time(const WorkEstimate& w, int threads,
                   int socket_active_threads) const;

  /// Single-threaded variant (socket otherwise idle).
  double exec_time_serial(const WorkEstimate& w) const {
    return exec_time(w, 1, 1);
  }

  /// Memory bandwidth share available to `threads` of
  /// `socket_active_threads` active threads.
  double bandwidth_share(int threads, int socket_active_threads) const;

 private:
  HostSpec spec_;
};

}  // namespace toast::accel
