#pragma once

// Allocation-fault hook for the simulated device (the accel-side half of
// the fault-injection layer, mirroring TraceSink).  SimDevice consults the
// hook on every allocation; the hook may force a DeviceOomError even when
// capacity remains, modelling allocation failures under memory pressure
// (fragmentation, competing processes on a shared GPU).  The concrete
// implementation lives in src/fault/ so accel stays a leaf module.

#include <cstddef>

namespace toast::accel {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Return true to force `site`'s allocation of `requested` bytes to
  /// fail with a DeviceOomError marked `injected`.  `in_use` / `capacity`
  /// let the hook condition on memory pressure.
  virtual bool oom_should_fire(const char* site, std::size_t requested,
                               std::size_t in_use, std::size_t capacity) = 0;
};

}  // namespace toast::accel
