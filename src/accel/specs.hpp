#pragma once

// Hardware specifications for the performance model.  Defaults describe one
// Perlmutter GPU node as used in the paper: 4x NVIDIA A100-40GB, one AMD
// Milan 64-core CPU, PCIe gen4, Slingshot interconnect.
//
// Every constant is a published figure or a standard sustained-fraction
// estimate; none is fitted to a specific experiment output.  The calibration
// that shapes the reproduced figures happens through the *work estimates*
// the backends produce (padding, launches, divergence, atomics), not by
// editing these numbers per experiment.

namespace toast::accel {

/// An A100-like accelerator.
struct DeviceSpec {
  /// Peak FP64 throughput (non tensor-core), flop/s.
  double fp64_flops = 9.7e12;
  /// Sustained fraction of peak for well-shaped numeric kernels.
  double compute_efficiency = 0.60;
  /// HBM2e bandwidth, bytes/s.
  double hbm_bandwidth = 1.555e12;
  /// Sustained fraction of HBM bandwidth for streaming kernels.
  double hbm_efficiency = 0.75;
  /// Host-device link (PCIe gen4 x16), bytes/s and per-transfer latency.
  double pcie_bandwidth = 25.0e9;
  double pcie_latency = 10.0e-6;
  /// Device memory capacity, bytes.
  double memory_bytes = 40.0e9;
  /// Driver-level kernel launch latency (seconds); backend dispatch costs
  /// are added on top by the backends themselves.
  double launch_latency = 4.0e-6;
  /// Threads needed to saturate the device (108 SMs x 2048 threads).
  double saturation_threads = 221184.0;
  /// Cost of a CUDA context switch when time-slicing between processes
  /// without MPS (seconds per switch).
  double context_switch_cost = 2.5e-4;
  /// Extra cost of one conflicting FP64 atomic update (seconds).  Same-
  /// address atomics are aggregated in L2 on Ampere, so the per-op
  /// serialization is small; it still adds up over billions of updates.
  double atomic_conflict_cost = 1.0e-11;
};

/// A Milan-like CPU socket.
struct HostSpec {
  int cores = 64;
  /// Sustained per-core FP64 rate with full vectorization, flop/s
  /// (2.45 GHz x 2 FMA pipes x 4-wide AVX2 x 2 flops ~= 39 G, derated).
  double flops_per_core = 30.0e9;
  /// Fraction of that rate these (partly branchy, partly strided) kernels
  /// attain; applied on top of the per-kernel vectorization estimate.
  double compute_efficiency = 0.45;
  /// Socket DRAM bandwidth, bytes/s (8-channel DDR4-3200).
  double dram_bandwidth = 190.0e9;
  double dram_efficiency = 0.80;
  /// Node memory, bytes.
  double memory_bytes = 256.0e9;
  /// Per-call overhead of invoking a compiled kernel from the framework.
  double call_overhead = 2.0e-6;
};

/// Slingshot-like interconnect for the MPI model.  The first two fields
/// describe one inter-node NIC (what the closed-form CommModel uses); the
/// rest describe the cluster layout the step-scheduled comm engine builds
/// its topology from (docs/MODEL.md §9).
struct NetworkSpec {
  double bandwidth = 25.0e9;  // bytes/s per NIC
  double latency = 2.0e-6;    // seconds
  /// Intra-node link (shared-memory transport between ranks on one node).
  double intra_bandwidth = 100.0e9;
  double intra_latency = 4.0e-7;
  /// Slingshot NICs per node (Perlmutter GPU nodes carry 4); ranks packed
  /// onto a node share them round-robin.
  int nics_per_node = 4;
};

DeviceSpec a100_spec();
HostSpec milan_spec();
NetworkSpec slingshot_spec();

}  // namespace toast::accel
