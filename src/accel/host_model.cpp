#include "accel/host_model.hpp"

#include <algorithm>
#include <cmath>

namespace toast::accel {

double HostModel::bandwidth_share(int threads,
                                  int socket_active_threads) const {
  const int active = std::max(threads, socket_active_threads);
  const double fraction =
      static_cast<double>(threads) / static_cast<double>(std::max(1, active));
  return spec_.dram_bandwidth * spec_.dram_efficiency * fraction;
}

double HostModel::exec_time(const WorkEstimate& w, int threads,
                            int socket_active_threads) const {
  if (w.flops <= 0.0 && w.total_bytes() <= 0.0) {
    return 0.0;
  }
  const int t = std::max(1, threads);
  // CPUs handle divergent branches with prediction rather than lockstep
  // execution: divergence costs vectorization, not serialized paths.
  const double simd = std::max(0.1, w.cpu_vector_eff / w.divergence);
  // Thread-scaling efficiency: wide OpenMP regions lose time to NUMA,
  // barriers and imbalance.  This is why the paper's CPU runtime keeps
  // improving when the same cores are split into more processes (§4.1).
  const double thread_eff =
      1.0 / (1.0 + 0.025 * static_cast<double>(t - 1));
  const double rate = static_cast<double>(t) * spec_.flops_per_core *
                      spec_.compute_efficiency * simd * thread_eff;
  const double t_compute = w.flops / rate;
  const double t_memory =
      w.total_bytes() / bandwidth_share(t, socket_active_threads);
  // Atomics carry no extra host cost: the threaded CPU kernels accumulate
  // into thread-private buffers (or see negligible contention, with tens
  // of threads scattered over millions of addresses).
  return std::max(t_compute, t_memory) + w.launches * spec_.call_overhead;
}

}  // namespace toast::accel
