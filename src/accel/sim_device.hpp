#pragma once

// The simulated accelerator.  Functional execution of kernels happens on
// the host (so numerics are real and testable); this class supplies the
// *time* and *memory* behaviour of an A100-like device: execution cost of a
// work estimate, transfer cost over PCIe, allocation tracking with
// out-of-memory enforcement, and the process-sharing model (exclusive,
// time-sliced without MPS, or MPS).

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "accel/fault_hook.hpp"
#include "accel/specs.hpp"
#include "accel/trace_sink.hpp"
#include "accel/work.hpp"

namespace toast::accel {

/// How multiple processes share one physical device.
enum class Sharing {
  kExclusive,   ///< one process owns the device
  kTimeSliced,  ///< several processes, no MPS: driver context-switches
  kMps,         ///< several processes, NVIDIA MPS: concurrent kernels
};

const char* to_string(Sharing s);

/// Structured description of a failed device allocation.  Recovery code
/// branches on these fields (requested vs capacity, who holds the memory,
/// injected vs real pressure) instead of parsing what().
struct OomInfo {
  std::size_t requested_bytes = 0;
  std::size_t in_use_bytes = 0;
  std::size_t capacity_bytes = 0;
  /// Forced by a FaultHook (transient, worth retrying) rather than a real
  /// capacity overflow (retry is pointless unless something is freed).
  bool injected = false;
  /// Largest tagged holders of device memory at failure time, descending.
  std::vector<std::pair<std::string, std::size_t>> top_consumers;
};

/// Thrown when a simulated allocation exceeds device capacity (or a fault
/// hook forces a failure under memory pressure).
class DeviceOomError : public std::runtime_error {
 public:
  explicit DeviceOomError(OomInfo info);
  const OomInfo& info() const { return info_; }

 private:
  static std::string format(const OomInfo& info);
  OomInfo info_;
};

/// Per-process virtual clock.  All model times accumulate here; wall time
/// is unrelated.
class VirtualClock {
 public:
  void advance(double seconds) { t_ += seconds; }
  double now() const { return t_; }
  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

/// One simulated device (as seen by one process).
class SimDevice {
 public:
  explicit SimDevice(DeviceSpec spec = a100_spec()) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Configure the sharing situation: how many processes are attached to
  /// this physical GPU and whether MPS is active.
  void set_sharing(Sharing mode, int procs_attached);
  Sharing sharing() const { return sharing_; }
  int procs_attached() const { return procs_attached_; }

  /// Pure device execution time of one work estimate (no launch queueing,
  /// no sharing): roofline of compute and memory streams, degraded by
  /// occupancy, divergence and atomic conflicts.
  double kernel_time(const WorkEstimate& w) const;

  /// Time as experienced by the calling process, including launch latency
  /// for each launch and the sharing model (time-slicing pays context
  /// switches; MPS divides throughput but overlaps launch gaps).
  double exec_time(const WorkEstimate& w) const;

  /// Host to device / device to host transfer times (PCIe model).
  double transfer_time(double bytes) const;

  /// Device-side memset/fill time (HBM write stream + one launch).
  double fill_time(double bytes) const;

  // --- memory accounting -------------------------------------------------

  /// Record an allocation of `bytes`; throws DeviceOomError if the device
  /// would exceed capacity or the fault hook forces a failure.  `tag`
  /// attributes the memory to a consumer (pool, JIT temp...) so OOM
  /// errors can report who holds the device.
  void allocate(std::size_t bytes, const char* tag = nullptr);
  void deallocate(std::size_t bytes, const char* tag = nullptr);
  std::size_t allocated_bytes() const { return allocated_; }
  /// Tagged holders of device memory, largest first.
  std::vector<std::pair<std::string, std::size_t>> top_consumers() const;
  std::size_t capacity_bytes() const {
    return static_cast<std::size_t>(spec_.memory_bytes);
  }

  // --- counters (for tests and reporting) --------------------------------

  std::uint64_t total_launches() const { return total_launches_; }
  double total_exec_seconds() const { return total_exec_seconds_; }
  double total_transfer_seconds() const { return total_transfer_seconds_; }
  double total_transfer_bytes() const { return total_transfer_bytes_; }
  /// Direction-split transfer traffic (H2D vs D2H).
  double total_h2d_bytes() const { return total_h2d_bytes_; }
  double total_d2h_bytes() const { return total_d2h_bytes_; }
  double total_h2d_seconds() const { return total_h2d_seconds_; }
  double total_d2h_seconds() const { return total_d2h_seconds_; }
  void note_execution(const WorkEstimate& w, double seconds);
  /// Record a completed PCIe transfer (emits a span on the device track).
  void note_transfer(double bytes, double seconds, bool to_device);
  /// Counter-only variants for the stream scheduler, which places ops at
  /// explicit intervals and emits its own per-stream spans (the device
  /// track renders now-relative, which is wrong for async ops).
  void count_execution(const WorkEstimate& w, double seconds);
  void count_transfer(double bytes, double seconds, bool to_device);
  void reset_counters();

  // --- tracing ------------------------------------------------------------

  /// Attach a trace sink; the device emits exec/transfer/alloc spans to it
  /// (nullptr detaches).  Not owned.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  /// Attach a fault hook consulted on every allocation (nullptr detaches).
  /// Not owned.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

 private:
  DeviceSpec spec_;
  Sharing sharing_ = Sharing::kExclusive;
  int procs_attached_ = 1;
  std::size_t allocated_ = 0;
  std::map<std::string, std::size_t> tagged_;
  std::uint64_t total_launches_ = 0;
  double total_exec_seconds_ = 0.0;
  double total_transfer_seconds_ = 0.0;
  double total_transfer_bytes_ = 0.0;
  double total_h2d_bytes_ = 0.0;
  double total_d2h_bytes_ = 0.0;
  double total_h2d_seconds_ = 0.0;
  double total_d2h_seconds_ = 0.0;
  TraceSink* sink_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
};

}  // namespace toast::accel
