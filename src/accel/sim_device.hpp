#pragma once

// The simulated accelerator.  Functional execution of kernels happens on
// the host (so numerics are real and testable); this class supplies the
// *time* and *memory* behaviour of an A100-like device: execution cost of a
// work estimate, transfer cost over PCIe, allocation tracking with
// out-of-memory enforcement, and the process-sharing model (exclusive,
// time-sliced without MPS, or MPS).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "accel/specs.hpp"
#include "accel/trace_sink.hpp"
#include "accel/work.hpp"

namespace toast::accel {

/// How multiple processes share one physical device.
enum class Sharing {
  kExclusive,   ///< one process owns the device
  kTimeSliced,  ///< several processes, no MPS: driver context-switches
  kMps,         ///< several processes, NVIDIA MPS: concurrent kernels
};

const char* to_string(Sharing s);

/// Thrown when a simulated allocation exceeds device capacity.
class DeviceOomError : public std::runtime_error {
 public:
  explicit DeviceOomError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-process virtual clock.  All model times accumulate here; wall time
/// is unrelated.
class VirtualClock {
 public:
  void advance(double seconds) { t_ += seconds; }
  double now() const { return t_; }
  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

/// One simulated device (as seen by one process).
class SimDevice {
 public:
  explicit SimDevice(DeviceSpec spec = a100_spec()) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Configure the sharing situation: how many processes are attached to
  /// this physical GPU and whether MPS is active.
  void set_sharing(Sharing mode, int procs_attached);
  Sharing sharing() const { return sharing_; }
  int procs_attached() const { return procs_attached_; }

  /// Pure device execution time of one work estimate (no launch queueing,
  /// no sharing): roofline of compute and memory streams, degraded by
  /// occupancy, divergence and atomic conflicts.
  double kernel_time(const WorkEstimate& w) const;

  /// Time as experienced by the calling process, including launch latency
  /// for each launch and the sharing model (time-slicing pays context
  /// switches; MPS divides throughput but overlaps launch gaps).
  double exec_time(const WorkEstimate& w) const;

  /// Host to device / device to host transfer times (PCIe model).
  double transfer_time(double bytes) const;

  /// Device-side memset/fill time (HBM write stream + one launch).
  double fill_time(double bytes) const;

  // --- memory accounting -------------------------------------------------

  /// Record an allocation of `bytes`; throws DeviceOomError if the device
  /// would exceed capacity.
  void allocate(std::size_t bytes);
  void deallocate(std::size_t bytes);
  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t capacity_bytes() const {
    return static_cast<std::size_t>(spec_.memory_bytes);
  }

  // --- counters (for tests and reporting) --------------------------------

  std::uint64_t total_launches() const { return total_launches_; }
  double total_exec_seconds() const { return total_exec_seconds_; }
  double total_transfer_seconds() const { return total_transfer_seconds_; }
  double total_transfer_bytes() const { return total_transfer_bytes_; }
  /// Direction-split transfer traffic (H2D vs D2H).
  double total_h2d_bytes() const { return total_h2d_bytes_; }
  double total_d2h_bytes() const { return total_d2h_bytes_; }
  double total_h2d_seconds() const { return total_h2d_seconds_; }
  double total_d2h_seconds() const { return total_d2h_seconds_; }
  void note_execution(const WorkEstimate& w, double seconds);
  /// Record a completed PCIe transfer (emits a span on the device track).
  void note_transfer(double bytes, double seconds, bool to_device);
  /// Counter-only variants for the stream scheduler, which places ops at
  /// explicit intervals and emits its own per-stream spans (the device
  /// track renders now-relative, which is wrong for async ops).
  void count_execution(const WorkEstimate& w, double seconds);
  void count_transfer(double bytes, double seconds, bool to_device);
  void reset_counters();

  // --- tracing ------------------------------------------------------------

  /// Attach a trace sink; the device emits exec/transfer/alloc spans to it
  /// (nullptr detaches).  Not owned.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

 private:
  DeviceSpec spec_;
  Sharing sharing_ = Sharing::kExclusive;
  int procs_attached_ = 1;
  std::size_t allocated_ = 0;
  std::uint64_t total_launches_ = 0;
  double total_exec_seconds_ = 0.0;
  double total_transfer_seconds_ = 0.0;
  double total_transfer_bytes_ = 0.0;
  double total_h2d_bytes_ = 0.0;
  double total_d2h_bytes_ = 0.0;
  double total_h2d_seconds_ = 0.0;
  double total_d2h_seconds_ = 0.0;
  TraceSink* sink_ = nullptr;
};

}  // namespace toast::accel
