#include "accel/sim_device.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace toast::accel {

DeviceSpec a100_spec() { return DeviceSpec{}; }
HostSpec milan_spec() { return HostSpec{}; }
NetworkSpec slingshot_spec() { return NetworkSpec{}; }

DeviceOomError::DeviceOomError(OomInfo info)
    : std::runtime_error(format(info)), info_(std::move(info)) {}

std::string DeviceOomError::format(const OomInfo& info) {
  std::ostringstream msg;
  msg << "simulated device out of memory: requested " << info.requested_bytes
      << " B with " << info.in_use_bytes << " B already allocated of "
      << info.capacity_bytes << " B capacity";
  if (info.injected) {
    msg << " (injected fault)";
  }
  for (const auto& [tag, bytes] : info.top_consumers) {
    msg << "; " << tag << " holds " << bytes << " B";
  }
  return msg.str();
}

const char* to_string(Sharing s) {
  switch (s) {
    case Sharing::kExclusive:
      return "exclusive";
    case Sharing::kTimeSliced:
      return "time-sliced";
    case Sharing::kMps:
      return "mps";
  }
  return "unknown";
}

void SimDevice::set_sharing(Sharing mode, int procs_attached) {
  sharing_ = mode;
  procs_attached_ = std::max(1, procs_attached);
  if (procs_attached_ == 1) {
    sharing_ = Sharing::kExclusive;
  }
}

double SimDevice::kernel_time(const WorkEstimate& w) const {
  if (w.flops <= 0.0 && w.total_bytes() <= 0.0 && w.atomic_ops <= 0.0) {
    return 0.0;
  }
  // Occupancy: fraction of the device a launch with this much exposed
  // parallelism can keep busy.  Saturates towards 1 for large launches.
  const double n = std::max(1.0, w.parallel_items);
  const double occupancy = n / (n + 0.1 * spec_.saturation_threads);
  const double t_compute =
      w.flops * w.divergence /
      (spec_.fp64_flops * spec_.compute_efficiency * occupancy);
  const double t_memory =
      w.total_bytes() / (spec_.hbm_bandwidth * spec_.hbm_efficiency *
                         std::min(1.0, 0.25 + 0.75 * occupancy));
  // Conflicting atomics serialize on the memory system; conflict-free
  // atomics ride the normal write stream (already in bytes_written).
  const double t_atomics =
      w.atomic_ops * w.atomic_conflict_rate * spec_.atomic_conflict_cost;
  return std::max(t_compute, t_memory) + t_atomics;
}

double SimDevice::exec_time(const WorkEstimate& w) const {
  const double t_kernel = kernel_time(w);
  const double t_launch = w.launches * spec_.launch_latency;
  switch (sharing_) {
    case Sharing::kExclusive:
      return t_launch + t_kernel;
    case Sharing::kMps:
      // MPS runs kernels from different processes concurrently: each
      // process sees its fair share of device throughput, but launch
      // latency overlaps with other processes' execution.
      return t_launch + t_kernel * procs_attached_;
    case Sharing::kTimeSliced: {
      // Without MPS the driver context-switches between the attached
      // processes; each batch of launches pays a switch, and execution is
      // serialized with no overlap benefit.
      const double switches = std::max(1.0, w.launches);
      return t_launch + t_kernel * procs_attached_ +
             switches * spec_.context_switch_cost * (procs_attached_ - 1);
    }
  }
  return t_launch + t_kernel;
}

double SimDevice::transfer_time(double bytes) const {
  if (bytes <= 0.0) {
    return 0.0;
  }
  // PCIe is shared between the processes attached to this GPU.
  const double share =
      spec_.pcie_bandwidth / std::max(1, procs_attached_);
  return spec_.pcie_latency + bytes / share;
}

double SimDevice::fill_time(double bytes) const {
  WorkEstimate w;
  w.bytes_written = bytes;
  w.launches = 1.0;
  w.parallel_items = bytes / 8.0;
  return exec_time(w);
}

std::vector<std::pair<std::string, std::size_t>> SimDevice::top_consumers()
    const {
  std::vector<std::pair<std::string, std::size_t>> out(tagged_.begin(),
                                                       tagged_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

void SimDevice::allocate(std::size_t bytes, const char* tag) {
  const bool over_capacity = allocated_ + bytes > capacity_bytes();
  const bool injected =
      !over_capacity && fault_hook_ != nullptr &&
      fault_hook_->oom_should_fire(tag != nullptr ? tag : "device_alloc",
                                   bytes, allocated_, capacity_bytes());
  if (over_capacity || injected) {
    OomInfo info;
    info.requested_bytes = bytes;
    info.in_use_bytes = allocated_;
    info.capacity_bytes = capacity_bytes();
    info.injected = injected;
    info.top_consumers = top_consumers();
    throw DeviceOomError(std::move(info));
  }
  allocated_ += bytes;
  if (tag != nullptr) {
    tagged_[tag] += bytes;
  }
  if (sink_ != nullptr) {
    sink_->device_span("device_alloc", "alloc", 0.0,
                       static_cast<double>(bytes), nullptr);
  }
}

void SimDevice::deallocate(std::size_t bytes, const char* tag) {
  allocated_ -= std::min(allocated_, bytes);
  if (tag != nullptr) {
    auto it = tagged_.find(tag);
    if (it != tagged_.end()) {
      it->second -= std::min(it->second, bytes);
      if (it->second == 0) {
        tagged_.erase(it);
      }
    }
  }
  if (sink_ != nullptr) {
    sink_->device_span("device_free", "alloc", 0.0,
                       static_cast<double>(bytes), nullptr);
  }
}

void SimDevice::count_execution(const WorkEstimate& w, double seconds) {
  total_launches_ += static_cast<std::uint64_t>(w.launches);
  total_exec_seconds_ += seconds;
}

void SimDevice::note_execution(const WorkEstimate& w, double seconds) {
  count_execution(w, seconds);
  if (sink_ != nullptr) {
    sink_->device_span("device_exec", "exec", seconds, 0.0, &w);
  }
}

void SimDevice::count_transfer(double bytes, double seconds,
                               bool to_device) {
  total_transfer_seconds_ += seconds;
  total_transfer_bytes_ += bytes;
  if (to_device) {
    total_h2d_bytes_ += bytes;
    total_h2d_seconds_ += seconds;
  } else {
    total_d2h_bytes_ += bytes;
    total_d2h_seconds_ += seconds;
  }
}

void SimDevice::note_transfer(double bytes, double seconds, bool to_device) {
  count_transfer(bytes, seconds, to_device);
  if (sink_ != nullptr) {
    sink_->device_span(to_device ? "h2d_transfer" : "d2h_transfer",
                       "transfer", seconds, bytes, nullptr);
  }
}

void SimDevice::reset_counters() {
  total_launches_ = 0;
  total_exec_seconds_ = 0.0;
  total_transfer_seconds_ = 0.0;
  total_transfer_bytes_ = 0.0;
  total_h2d_bytes_ = 0.0;
  total_d2h_bytes_ = 0.0;
  total_h2d_seconds_ = 0.0;
  total_d2h_seconds_ = 0.0;
}

}  // namespace toast::accel
