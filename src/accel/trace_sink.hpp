#pragma once

// Minimal emission interface the device model uses to report spans to the
// tracing layer.  Lives in accel (not obs) so SimDevice can emit
// transfer/exec/alloc events without a dependency cycle: obs depends on
// accel, never the other way around.

namespace toast::accel {

struct WorkEstimate;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Record a completed device-side event of `seconds` duration ending at
  /// the current virtual time.  `bytes` is the payload for transfer/alloc
  /// events (0 when meaningless); `work` is the executed estimate for
  /// kernel events (nullptr otherwise).
  virtual void device_span(const char* name, const char* category,
                           double seconds, double bytes,
                           const WorkEstimate* work) = 0;
};

}  // namespace toast::accel
