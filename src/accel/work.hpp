#pragma once

// Work estimates: the contract between kernel implementations and the
// performance model.  Each backend execution produces a WorkEstimate that
// describes what the kernel *did* (flops, memory traffic, launches,
// available parallelism, control-flow structure).  The SimDevice / host
// model converts estimates into virtual seconds.
//
// Estimates are linear in trip counts, so they can be scaled from the
// reduced functional problem size up to the paper-scale problem.

#include <cstddef>

namespace toast::accel {

struct WorkEstimate {
  /// Floating-point operations actually executed.
  double flops = 0.0;
  /// Bytes read from / written to the kernel's main memory.
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  /// Number of device kernel launches this estimate covers.
  double launches = 0.0;
  /// Exposed parallelism (independent work items across the launch).
  double parallel_items = 1.0;
  /// Compute-time multiplier from control-flow divergence: 1 for straight
  /// line code; >1 when SIMT lanes execute distinct paths (OpenMP target
  /// pays the longest path per warp, XLA predication pays the *sum* of
  /// paths it materializes).
  double divergence = 1.0;
  /// Atomic read-modify-write operations, and the measured probability
  /// that two concurrent atomics hit the same address.
  double atomic_ops = 0.0;
  double atomic_conflict_rate = 0.0;
  /// Effective SIMD fraction on the CPU (1 = fully vectorized).  Only used
  /// by the host model.
  double cpu_vector_eff = 1.0;

  /// Scale data-proportional fields by `s`, leaving launch counts and
  /// structural factors unchanged.
  WorkEstimate scaled(double s) const {
    WorkEstimate w = *this;
    w.flops *= s;
    w.bytes_read *= s;
    w.bytes_written *= s;
    w.parallel_items *= s;
    w.atomic_ops *= s;
    return w;
  }

  /// Accumulate another estimate (e.g. several launches of one pipeline).
  WorkEstimate& operator+=(const WorkEstimate& o) {
    // Structural factors are combined as flop-weighted averages so that a
    // sum of estimates models a sequence of the underlying kernels.
    const double wf = flops + o.flops;
    if (wf > 0.0) {
      divergence = (divergence * flops + o.divergence * o.flops) / wf;
      cpu_vector_eff =
          (cpu_vector_eff * flops + o.cpu_vector_eff * o.flops) / wf;
    }
    const double wa = atomic_ops + o.atomic_ops;
    if (wa > 0.0) {
      atomic_conflict_rate = (atomic_conflict_rate * atomic_ops +
                              o.atomic_conflict_rate * o.atomic_ops) /
                             wa;
    }
    flops = wf;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    launches += o.launches;
    parallel_items += o.parallel_items;
    atomic_ops = wa;
    return *this;
  }

  double total_bytes() const { return bytes_read + bytes_written; }
};

}  // namespace toast::accel
