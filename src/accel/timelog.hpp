#pragma once

// Accumulating log of virtual time per named category, shared by all
// backends and the framework.  This is the reproduction of TOAST's timing
// decorator infrastructure (paper §3.2.3): every kernel invocation and
// every data-movement operation records its virtual duration under a
// category name; Figure 6 is a dump of this log.

#include <map>
#include <string>
#include <vector>

namespace toast::accel {

class TimeLog {
 public:
  void add(const std::string& category, double seconds) {
    auto& e = entries_[category];
    e.seconds += seconds;
    e.calls += 1;
  }

  double seconds(const std::string& category) const {
    const auto it = entries_.find(category);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }

  long calls(const std::string& category) const {
    const auto it = entries_.find(category);
    return it == entries_.end() ? 0 : it->second.calls;
  }

  double total_seconds() const {
    double t = 0.0;
    for (const auto& [name, e] : entries_) {
      t += e.seconds;
    }
    return t;
  }

  std::vector<std::string> categories() const {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      names.push_back(name);
    }
    return names;
  }

  void clear() { entries_.clear(); }

  /// Merge another log into this one (used when aggregating processes).
  void merge(const TimeLog& other) {
    for (const auto& [name, e] : other.entries_) {
      auto& mine = entries_[name];
      mine.seconds += e.seconds;
      mine.calls += e.calls;
    }
  }

 private:
  struct Entry {
    double seconds = 0.0;
    long calls = 0;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace toast::accel
