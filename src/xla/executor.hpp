#pragma once

// Compilation (pass pipeline + fusion grouping) and execution of HLO
// modules.  Execution computes real values on the host and, per fusion
// group, a WorkEstimate describing what an XLA GPU executable would have
// done: one launch per group, memory traffic only across group boundaries,
// flops for every element actually computed (including padding and both
// sides of every select - predication is how XLA handles branches).
//
// Scatter lowering is decided from the data, as XLA:GPU does: sorted
// (segment) scatters become a conflict-free segmented reduction; unsorted
// scatters pay atomics with the measured conflict rate.

#include <span>
#include <vector>

#include "accel/work.hpp"
#include "xla/hlo.hpp"
#include "xla/passes.hpp"

namespace toast::xla {

struct Compiled {
  HloModule module;
  std::vector<int> group_of;  // fusion group per instruction, -1 = memory
  int n_groups = 0;
  PassStats pass_stats;
  /// Modelled XLA compile time (charged once per cache entry).
  double compile_seconds = 0.0;
};

Compiled compile(HloModule module);

struct ExecutionReport {
  std::vector<accel::WorkEstimate> group_work;
  /// Whether each group contains a heavy op (reduce/dot/gather/scatter);
  /// XLA's CPU backend parallelizes only these (paper §4.2).
  std::vector<bool> group_heavy;
  /// Data-dependency edges of the fusion-group DAG: group g reads values
  /// produced by every group in group_deps[g] (sorted, deduplicated).
  /// Groups with disjoint dep chains are independent and the runtime may
  /// dispatch them onto different streams.
  std::vector<std::vector<int>> group_deps;
  accel::WorkEstimate total;
  bool segment_lowering_used = false;
  /// Bytes of intermediate buffers held at the peak of execution.
  std::size_t peak_temp_bytes = 0;
};

/// Evaluate the compiled module.  `args` must match module params.
std::vector<Literal> execute(const Compiled& compiled,
                             std::span<const Literal> args,
                             ExecutionReport* report = nullptr);

}  // namespace toast::xla
