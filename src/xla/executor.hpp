#pragma once

// Compilation (pass pipeline + fusion grouping) and execution of HLO
// modules.  Execution computes real values on the host and, per fusion
// group, a WorkEstimate describing what an XLA GPU executable would have
// done: one launch per group, memory traffic only across group boundaries,
// flops for every element actually computed (including padding and both
// sides of every select - predication is how XLA handles branches).
//
// Scatter lowering is decided from the data, as XLA:GPU does: sorted
// (segment) scatters become a conflict-free segmented reduction; unsorted
// scatters pay atomics with the measured conflict rate.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "accel/work.hpp"
#include "xla/hlo.hpp"
#include "xla/passes.hpp"

namespace toast::xla {

/// How a Compiled module computes its values.  Both modes produce
/// bitwise-identical products and ExecutionReports; only the real
/// wall-clock cost of the value computation differs.
enum class ExecMode {
  kInterpreted,  ///< per-op evaluation, one Literal per instruction
  kCompiled,     ///< fused-loop executable (xla/compiled.hpp)
};

class FusedExecutable;

struct Compiled {
  HloModule module;
  std::vector<int> group_of;  // fusion group per instruction, -1 = memory
  int n_groups = 0;
  PassStats pass_stats;
  /// Modelled XLA compile time (charged once per cache entry).
  double compile_seconds = 0.0;
  /// Lazily-built fused-loop executable (execute_compiled's cache; the
  /// lowering runs once per Compiled, on first compiled execution).
  mutable std::shared_ptr<const FusedExecutable> fused;
};

Compiled compile(HloModule module);

struct ExecutionReport {
  std::vector<accel::WorkEstimate> group_work;
  /// Whether each group contains a heavy op (reduce/dot/gather/scatter);
  /// XLA's CPU backend parallelizes only these (paper §4.2).
  std::vector<bool> group_heavy;
  /// Data-dependency edges of the fusion-group DAG: group g reads values
  /// produced by every group in group_deps[g] (sorted, deduplicated).
  /// Groups with disjoint dep chains are independent and the runtime may
  /// dispatch them onto different streams.
  std::vector<std::vector<int>> group_deps;
  accel::WorkEstimate total;
  bool segment_lowering_used = false;
  /// Bytes of intermediate buffers held at the peak of execution.
  std::size_t peak_temp_bytes = 0;
};

/// Evaluate the compiled module.  `args` must match module params.
std::vector<Literal> execute(const Compiled& compiled,
                             std::span<const Literal> args,
                             ExecutionReport* report = nullptr);

/// Evaluate via the fused-loop executable (xla/compiled.hpp): one
/// specialized loop per materialized value instead of one Literal per
/// instruction.  Products and report are bitwise-identical to execute();
/// throws LoweringError when the module cannot be lowered (the Jit falls
/// back to the interpreter).
std::vector<Literal> execute_compiled(const Compiled& compiled,
                                      std::span<const Literal> args,
                                      ExecutionReport* report = nullptr);

namespace detail {

/// Check args against the traced signature (count, shapes, dtypes);
/// throws std::invalid_argument on mismatch.  Shared by both executors.
void validate_args(const HloModule& m, std::span<const Literal> args);

/// Returns the executed index stream of a scatter instruction (the value
/// of its operands[1]).  The only data dependence of the metering model:
/// everything else in the report derives from shapes and the group
/// assignment, but the scatter lowering decision (segmented reduction vs
/// atomics, and the conflict rate) is taken from the actual indices.
using ScatterIdxFn =
    std::function<std::span<const std::int64_t>(InstrId scatter)>;

/// Build the full ExecutionReport for a module.  Both executors call
/// this with their own ScatterIdxFn, which is what makes the reports —
/// and hence the modelled TimeLog — bitwise identical across modes.
ExecutionReport build_report(const Compiled& compiled,
                             const ScatterIdxFn& scatter_idx);

}  // namespace detail

}  // namespace toast::xla
