#include "xla/jit.hpp"

#include <algorithm>

#include <sstream>

#include "sched/scheduler.hpp"
#include "xla/compiled.hpp"

namespace toast::xla {

void Runtime::enable_preallocation(double fraction) {
  if (prealloc_bytes_ > 0) {
    return;
  }
  const auto bytes = static_cast<std::size_t>(
      fraction * static_cast<double>(device_.capacity_bytes()));
  device_.allocate(bytes, "xla_prealloc");
  prealloc_bytes_ = bytes;
}

void Runtime::disable_preallocation() {
  if (prealloc_bytes_ > 0) {
    device_.deallocate(prealloc_bytes_, "xla_prealloc");
    prealloc_bytes_ = 0;
  }
}

void Runtime::set_cpu_backend(accel::HostSpec spec, int heavy_threads,
                              int socket_active_threads) {
  cpu_backend_ = true;
  host_model_ = accel::HostModel(spec);
  cpu_heavy_threads_ = heavy_threads;
  cpu_socket_active_ = socket_active_threads;
  // No device: transfers vanish, but the Python-level dispatch cost of the
  // XLA runtime remains (and is larger than a bare C call).
  dispatch_overhead_ = 4.0e-5;
}

std::string Jit::signature(const std::vector<Literal>& args,
                           const std::string& static_key) const {
  std::ostringstream key;
  for (const auto& a : args) {
    key << a.shape().to_string() << to_string(a.dtype()) << ";";
  }
  key << "#" << static_key;
  return key.str();
}

const Compiled* Jit::lookup(const std::vector<Literal>& args,
                            const std::string& static_key) const {
  const auto it = cache_.find(signature(args, static_key));
  return it == cache_.end() ? nullptr : it->second.get();
}

const Compiled& Jit::get_or_compile(Runtime& rt,
                                    const std::vector<Literal>& args,
                                    const std::string& static_key) {
  const std::string key = signature(args, static_key);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    return *it->second;
  }
  // Trace: build parameter instructions matching the argument shapes and
  // run the user function to record the graph.
  TraceContext ctx(name_);
  std::vector<Array> params;
  params.reserve(args.size());
  for (std::size_t p = 0; p < args.size(); ++p) {
    HloInstruction in;
    in.opcode = Opcode::kParam;
    in.dtype = args[p].dtype();
    in.shape = args[p].shape();
    in.i0 = static_cast<std::int64_t>(p);
    const InstrId id = ctx.emit(std::move(in));
    ctx.module().params.push_back(id);
    params.emplace_back(&ctx, id);
  }
  const std::vector<Array> results = fn_(params);
  std::vector<InstrId> roots;
  roots.reserve(results.size());
  for (const auto& r : results) {
    if (r.ctx() != &ctx) {
      throw std::logic_error("xla: jit function returned a foreign array");
    }
    roots.push_back(r.id());
  }
  auto compiled = std::make_unique<Compiled>(compile(ctx.finish(roots)));

  // Charge the compile time once (the paper includes JIT compilation in
  // its runtimes).
  rt.clock().advance(compiled->compile_seconds);
  const obs::SpanId span = rt.tracer().record(
      "jit_compile", "compile", compiled->compile_seconds, "jax");
  rt.tracer().add_counter(span, "instructions",
                          static_cast<double>(compiled->module.size()));
  rt.tracer().add_counter(span, "fusion_groups",
                          static_cast<double>(compiled->n_groups));

  const auto [pos, inserted] = cache_.emplace(key, std::move(compiled));
  (void)inserted;
  return *pos->second;
}

std::vector<Literal> Jit::call_reported(Runtime& rt,
                                        const std::vector<Literal>& args,
                                        const std::string& static_key,
                                        ExecutionReport& report) {
  const Compiled& compiled = get_or_compile(rt, args, static_key);
  // Value computation: interpreter or fused-loop executable, selected by
  // the runtime's executor mode.  Everything after this line — memory
  // accounting, fault probes, group charging — is mode-independent,
  // because the report is bitwise-identical between the two and the
  // fault injector must see the same draw sequence either way.
  std::vector<Literal> outputs;
  if (rt.executor() == ExecMode::kCompiled) {
    try {
      outputs = execute_compiled(compiled, args, &report);
    } catch (const LoweringError&) {
      // The interpreter is both the oracle and the fallback: a module
      // the fused lowering rejects still executes, one op at a time.
      if (rt.faults() != nullptr) {
        rt.faults()->add_count("xla_compiled_fallback");
      }
      outputs = execute(compiled, args, &report);
    }
  } else {
    outputs = execute(compiled, args, &report);
  }

  // Memory accounting: temporaries live for the duration of the call.
  // Donated parameter buffers are recycled for outputs.
  std::size_t donated_bytes = 0;
  for (const int p : donated_) {
    if (p >= 0 && static_cast<std::size_t>(p) < args.size()) {
      donated_bytes += args[static_cast<std::size_t>(p)].byte_size();
    }
  }
  const std::size_t temp =
      report.peak_temp_bytes > donated_bytes
          ? report.peak_temp_bytes - donated_bytes
          : 0;
  // When preallocation is on the pool already owns the memory; otherwise
  // allocate (and immediately release) against the device to enforce the
  // capacity limit.
  if (!rt.preallocation() && temp > 0) {
    fault::FaultInjector* faults = rt.faults();
    for (int attempt = 0;; ++attempt) {
      try {
        rt.device().allocate(temp, "xla_temp");
        break;
      } catch (const accel::DeviceOomError& e) {
        // Injected allocation failures get their bounded backoff retry;
        // real capacity overflows propagate (fig4 relies on them).
        if (faults == nullptr || !faults->on_oom("xla_temp", e, attempt)) {
          throw;
        }
      }
    }
    rt.device().deallocate(temp, "xla_temp");
  }

  // Charge execution: one dispatch per call, then place the fusion-group
  // DAG onto the runtime's virtual streams (XLA dispatches groups
  // asynchronously; the call blocks on the last result).  With one stream
  // the placement degenerates to the seed's serial sum after the dispatch
  // gap, bit for bit; the whole call is the logged parent span.
  const char* backend_label = rt.cpu_backend() ? "jax-cpu" : "jax";
  if (rt.faults() != nullptr && rt.faults()->armed() && !rt.cpu_backend()) {
    // Probed before any group is charged so a persistent launch fault
    // leaves the device counters untouched (the pipeline re-runs the op
    // on the CPU).  Retry penalties land on the clock here.
    rt.faults()->attempt_sync(fault::FaultKind::kLaunch, "xla/" + name_,
                              rt.dispatch_overhead());
  }
  const double t_start = rt.clock().now();
  struct GroupCharge {
    std::size_t group;
    accel::WorkEstimate work;
  };
  std::vector<GroupCharge> charges;
  std::vector<sched::BatchOp> batch;
  std::vector<int> batch_index(report.group_work.size(), -1);
  for (std::size_t g = 0; g < report.group_work.size(); ++g) {
    const auto& w = report.group_work[g];
    if (w.launches <= 0.0) {
      continue;
    }
    accel::WorkEstimate scaled = w.scaled(rt.work_scale());
    double t = 0.0;
    double launch_part = 0.0;
    if (rt.cpu_backend()) {
      // XLA:CPU parallelizes individual heavy ops only; elementwise
      // fusion groups run on one core, and its scalar codegen does not
      // vectorize these loops the way the hand-written kernels do
      // (the backend "has received significantly less attention", §4.2).
      const bool heavy = g < report.group_heavy.size() && report.group_heavy[g];
      const int threads = heavy ? rt.cpu_heavy_threads() : 1;
      scaled.cpu_vector_eff = std::min(scaled.cpu_vector_eff, 0.15);
      // ...and it materializes temporaries the GPU backend would keep in
      // registers, roughly doubling the memory traffic.
      scaled.bytes_read *= 2.0;
      scaled.bytes_written *= 2.0;
      t = rt.host_model().exec_time(scaled, threads, rt.cpu_socket_active());
    } else {
      t = rt.device().exec_time(scaled);
      rt.device().note_execution(scaled, t);
      launch_part =
          std::min(t, scaled.launches * rt.device().spec().launch_latency);
    }
    sched::BatchOp op;
    op.name = name_ + "/group" + std::to_string(g);
    op.duration = t;
    op.launch_part = launch_part;
    if (g < report.group_deps.size()) {
      for (const int d : report.group_deps[g]) {
        if (d >= 0 && static_cast<std::size_t>(d) < batch_index.size() &&
            batch_index[static_cast<std::size_t>(d)] >= 0) {
          op.deps.push_back(batch_index[static_cast<std::size_t>(d)]);
        }
      }
    }
    batch_index[g] = static_cast<int>(batch.size());
    batch.push_back(std::move(op));
    charges.push_back({g, scaled});
  }
  const int streams = rt.cpu_backend() ? 1 : rt.streams();
  const sched::BatchPlacement placed =
      sched::schedule_batch(batch, streams, rt.dispatch_overhead());
  rt.clock().advance(placed.makespan);
  const obs::SpanId call_span = rt.tracer().record(
      name_, "kernel", placed.makespan, backend_label, &report.total);
  rt.tracer().add_counter(call_span, "peak_temp_bytes",
                          static_cast<double>(report.peak_temp_bytes));
  rt.tracer().add_counter(call_span, "pass_folded",
                          static_cast<double>(compiled.pass_stats.folded));
  rt.tracer().add_counter(
      call_span, "pass_simplified",
      static_cast<double>(compiled.pass_stats.simplified));
  rt.tracer().add_counter(
      call_span, "pass_dot_rewrites",
      static_cast<double>(compiled.pass_stats.dot_rewrites));
  rt.tracer().add_counter(
      call_span, "pass_cse_removed",
      static_cast<double>(compiled.pass_stats.cse_removed));
  rt.tracer().add_counter(
      call_span, "pass_dce_removed",
      static_cast<double>(compiled.pass_stats.dce_removed));
  for (std::size_t i = 0; i < charges.size(); ++i) {
    const obs::SpanId span = rt.tracer().record_at(
        batch[i].name, "fusion", t_start + placed.start[i],
        batch[i].duration, backend_label, &charges[i].work,
        /*logged=*/false);
    if (streams > 1) {
      rt.tracer().set_stream(span, placed.stream[i]);
    }
  }
  return outputs;
}

std::vector<Literal> Jit::call(Runtime& rt, const std::vector<Literal>& args,
                               const std::string& static_key) {
  ExecutionReport report;
  return call_reported(rt, args, static_key, report);
}

}  // namespace toast::xla
