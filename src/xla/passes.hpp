#pragma once

// XLA-style optimization passes over HloModules:
//   - constant folding (small results only)
//   - recognition of dot / segment-reduction patterns
//     (reduce_sum(mul(a,b)) -> dot), the mechanism behind the paper's
//     observation that XLA expressed offset_project_signal "in terms of
//     linear algebra" (§4.2)
//   - common-subexpression elimination
//   - dead-code elimination
//   - fusion grouping: partitioning the graph into launchable kernels,
//     with heavy ops (gather/scatter/reduce/dot) terminating groups

#include <string>
#include <vector>

#include "xla/hlo.hpp"

namespace toast::xla {

struct PassStats {
  int folded = 0;
  int simplified = 0;
  int dot_rewrites = 0;
  int cse_removed = 0;
  int dce_removed = 0;
};

/// Run the full pipeline; returns the optimized module.
HloModule optimize(HloModule module, PassStats* stats = nullptr);

/// Individual passes (exposed for tests and the ablation benchmark).
HloModule fold_constants(HloModule module, int* folded = nullptr);
/// Algebraic identities: x*1 -> x, x+0 -> x, x-0 -> x, x/1 -> x,
/// neg(neg(x)) -> x, select(p, x, x) -> x.
HloModule simplify_algebra(HloModule module, int* simplified = nullptr);
HloModule rewrite_dots(HloModule module, int* rewrites = nullptr);
HloModule eliminate_common_subexpressions(HloModule module,
                                          int* removed = nullptr);
HloModule eliminate_dead_code(HloModule module, int* removed = nullptr);

/// Structural validation: SSA ordering (operands precede users), operand
/// ids in range, parameter indices unique and dense, roots valid.
/// Returns a list of human-readable problems (empty = valid).
std::vector<std::string> verify(const HloModule& module);

/// Assign a fusion group id to every instruction.  Group ids are dense and
/// increase with instruction order; params and constants get group -1
/// (they live in memory, not in a kernel).  Every heavy op closes its
/// group, so the number of distinct non-negative ids is the launch count.
std::vector<int> assign_fusion_groups(const HloModule& module);

}  // namespace toast::xla
