#pragma once

// Tracing front-end: the NumPy-like Array type the "JAX" kernel ports are
// written against.  Operations on Arrays do not compute anything — they
// record HLO instructions into the active TraceContext, exactly like JAX
// tracers do.  jit() (xla/jit.hpp) creates the context, traces the Python-
// looking kernel body once per shape signature, optimizes and executes.
//
// Purity is enforced by construction: there is no in-place mutation; the
// closest thing to x[idx] += y is the functional scatter_add, mirroring
// JAX's x.at[idx].add(y).

#include <cstdint>
#include <string>
#include <vector>

#include "xla/hlo.hpp"

namespace toast::xla {

class TraceContext {
 public:
  explicit TraceContext(std::string name);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  static TraceContext* current();

  InstrId emit(HloInstruction instr);
  const HloInstruction& at(InstrId id) const { return module_.at(id); }

  /// Finish tracing: mark roots and take the module.
  HloModule finish(const std::vector<InstrId>& roots);

  HloModule& module() { return module_; }

 private:
  HloModule module_;
  TraceContext* previous_ = nullptr;
};

/// Handle to a traced value.
class Array {
 public:
  Array() = default;
  Array(TraceContext* ctx, InstrId id) : ctx_(ctx), id_(id) {}

  bool valid() const { return ctx_ != nullptr; }
  InstrId id() const { return id_; }
  TraceContext* ctx() const { return ctx_; }

  const Shape& shape() const;
  DType dtype() const;
  std::int64_t size() const { return shape().num_elements(); }

 private:
  TraceContext* ctx_ = nullptr;
  InstrId id_ = -1;
};

// --- leaves ---------------------------------------------------------------

Array constant(double v);
Array constant_i64(std::int64_t v);
Array constant_array(const Literal& value);
/// [0, 1, ..., n-1] as I64.
Array iota(std::int64_t n);

// --- elementwise ----------------------------------------------------------

Array add(Array a, Array b);
Array sub(Array a, Array b);
Array mul(Array a, Array b);
Array div(Array a, Array b);
Array minimum(Array a, Array b);
Array maximum(Array a, Array b);
Array atan2(Array y, Array x);
Array mod(Array a, Array b);
Array neg(Array a);
Array abs(Array a);
/// -1, 0 or +1 with the operand's dtype.
Array sign(Array a);
Array sqrt(Array a);
Array tanh(Array a);
Array sin(Array a);
Array cos(Array a);
Array exp(Array a);
Array log(Array a);
Array floor(Array a);
Array select(Array pred, Array on_true, Array on_false);
Array clamp(Array v, Array lo, Array hi);
Array lt(Array a, Array b);
Array le(Array a, Array b);
Array gt(Array a, Array b);
Array ge(Array a, Array b);
Array eq(Array a, Array b);
Array ne(Array a, Array b);
Array logical_and(Array a, Array b);
Array logical_or(Array a, Array b);
Array logical_not(Array a);
Array bitwise_and(Array a, Array b);
Array bitwise_or(Array a, Array b);
Array bitwise_xor(Array a, Array b);
Array shift_left(Array a, Array bits);
Array shift_right(Array a, Array bits);
Array to_f64(Array a);
Array to_i64(Array a);

// --- structure ------------------------------------------------------------

Array reshape(Array a, Shape shape);
/// [n] -> [n, m], replicating each value across a row of m columns.
Array broadcast_col(Array a, std::int64_t m);
/// [m] -> [n, m], replicating the vector as n rows.
Array broadcast_row(Array a, std::int64_t n);
/// [n, m] -> [n], column `col`.
Array slice_col(Array a, std::int64_t col);

// --- heavy ----------------------------------------------------------------

/// table must be rank 1; result has the shape of `indices` with table's
/// dtype.  Out-of-range indices are clamped (JAX semantics).
Array gather(Array table, Array indices);
/// Functional scatter-add: result = base with updates[i] added at
/// indices[i]; base rank 1, indices/updates same shape.  Out-of-range
/// indices are dropped (JAX drop semantics).
Array scatter_add(Array base, Array indices, Array updates);
/// Functional scatter-store (JAX's x.at[idx].set(y)); out-of-range indices
/// are dropped, duplicate indices take the last update.
Array scatter_set(Array base, Array indices, Array updates);
/// axis = -1: reduce everything to a scalar.  axis = 1 on rank 2: -> [n].
Array reduce_sum(Array a, int axis = -1);
/// Full max-reduction to a scalar.
Array reduce_max(Array a);
/// 1-D dot product -> scalar.
Array dot(Array a, Array b);

// --- operator sugar ---------------------------------------------------------

inline Array operator+(Array a, Array b) { return add(a, b); }
inline Array operator-(Array a, Array b) { return sub(a, b); }
inline Array operator*(Array a, Array b) { return mul(a, b); }
inline Array operator/(Array a, Array b) { return div(a, b); }
inline Array operator-(Array a) { return neg(a); }
inline Array operator+(Array a, double b) { return add(a, constant(b)); }
inline Array operator-(Array a, double b) { return sub(a, constant(b)); }
inline Array operator*(Array a, double b) { return mul(a, constant(b)); }
inline Array operator/(Array a, double b) { return div(a, constant(b)); }
inline Array operator+(double a, Array b) { return add(constant(a), b); }
inline Array operator-(double a, Array b) { return sub(constant(a), b); }
inline Array operator*(double a, Array b) { return mul(constant(a), b); }
inline Array operator/(double a, Array b) { return div(constant(a), b); }

}  // namespace toast::xla
