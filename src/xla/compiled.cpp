#include "xla/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <type_traits>
#include <utility>

namespace toast::xla {

namespace fused {

// Elements evaluated per bytecode pass.  Registers are kBlock wide, so a
// loop's working set is (registers x 8 KiB) and stays cache-resident;
// tiny domains simply thread the same steps once with n = domain.
constexpr std::int64_t kBlock = 1024;

struct ExecState {
  std::vector<std::vector<double>> f64;
  std::vector<std::vector<std::int64_t>> i64;
  std::vector<std::vector<std::uint8_t>> pred;
  const std::vector<const Literal*>* vals = nullptr;
};

namespace {

template <typename T>
std::vector<std::vector<T>>& pool(ExecState& st) {
  if constexpr (std::is_same_v<T, double>) {
    return st.f64;
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return st.i64;
  } else {
    return st.pred;
  }
}

template <typename T>
std::span<const T> lit_span(const Literal& l) {
  if constexpr (std::is_same_v<T, double>) {
    return l.f64();
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return l.i64();
  } else {
    return l.pred();
  }
}

// --- loads ------------------------------------------------------------------

template <typename T>
void load_identity(const Step& s, ExecState& st, std::int64_t base,
                   std::int64_t n) {
  const auto src = lit_span<T>(*(*st.vals)[static_cast<std::size_t>(s.slot)]);
  T* dst = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  std::copy(src.begin() + base, src.begin() + base + n, dst);
}

template <typename T>
void load_scalar(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const auto src = lit_span<T>(*(*st.vals)[static_cast<std::size_t>(s.slot)]);
  T* dst = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  std::fill(dst, dst + n, src[0]);
}

template <typename T>
void load_xform(const Step& s, ExecState& st, std::int64_t base,
                std::int64_t n) {
  const auto src = lit_span<T>(*(*st.vals)[static_cast<std::size_t>(s.slot)]);
  T* dst = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) {
    dst[k] = src[static_cast<std::size_t>(apply_xform(s.xform, base + k))];
  }
}

void iota_step(const Step& s, ExecState& st, std::int64_t base,
               std::int64_t n) {
  std::int64_t* dst =
      pool<std::int64_t>(st)[static_cast<std::size_t>(s.out)].data();
  if (s.xform.empty()) {
    for (std::int64_t k = 0; k < n; ++k) dst[k] = base + k;
  } else {
    for (std::int64_t k = 0; k < n; ++k) {
      dst[k] = apply_xform(s.xform, base + k);
    }
  }
}

// --- compute steps ----------------------------------------------------------

template <typename Out, typename In, typename F>
void unary_step(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const In* a = pool<In>(st)[static_cast<std::size_t>(s.in0)].data();
  Out* o = pool<Out>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) o[k] = F{}(a[k]);
}

template <typename Out, typename In, typename F>
void binary_step(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const In* a = pool<In>(st)[static_cast<std::size_t>(s.in0)].data();
  const In* b = pool<In>(st)[static_cast<std::size_t>(s.in1)].data();
  Out* o = pool<Out>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) o[k] = F{}(a[k], b[k]);
}

template <typename T>
void select_step(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const std::uint8_t* p =
      pool<std::uint8_t>(st)[static_cast<std::size_t>(s.in0)].data();
  const T* t = pool<T>(st)[static_cast<std::size_t>(s.in1)].data();
  const T* f = pool<T>(st)[static_cast<std::size_t>(s.in2)].data();
  T* o = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) o[k] = p[k] ? t[k] : f[k];
}

template <typename T>
void clamp_step(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const T* v = pool<T>(st)[static_cast<std::size_t>(s.in0)].data();
  const T* lo = pool<T>(st)[static_cast<std::size_t>(s.in1)].data();
  const T* hi = pool<T>(st)[static_cast<std::size_t>(s.in2)].data();
  T* o = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) o[k] = std::clamp(v[k], lo[k], hi[k]);
}

template <typename T>
void gather_step(const Step& s, ExecState& st, std::int64_t, std::int64_t n) {
  const auto table =
      lit_span<T>(*(*st.vals)[static_cast<std::size_t>(s.slot)]);
  const std::int64_t t = static_cast<std::int64_t>(table.size());
  const std::int64_t* idx =
      pool<std::int64_t>(st)[static_cast<std::size_t>(s.in0)].data();
  T* o = pool<T>(st)[static_cast<std::size_t>(s.out)].data();
  for (std::int64_t k = 0; k < n; ++k) {
    // JAX clamps out-of-range gather indices (matches eval.cpp).
    const std::int64_t j = std::clamp<std::int64_t>(idx[k], 0, t - 1);
    o[k] = table[static_cast<std::size_t>(j)];
  }
}

// --- functors (each mirrors the exact expression in eval.cpp) ---------------

template <typename T>
struct Neg {
  T operator()(T v) const { return -v; }
};
template <typename T>
struct Abs {
  T operator()(T v) const { return std::abs(v); }
};
template <typename T>
struct Sign {
  T operator()(T v) const { return static_cast<T>((v > T{0}) - (v < T{0})); }
};
struct SqrtF {
  double operator()(double v) const { return std::sqrt(v); }
};
struct TanhF {
  double operator()(double v) const { return std::tanh(v); }
};
struct SinF {
  double operator()(double v) const { return std::sin(v); }
};
struct CosF {
  double operator()(double v) const { return std::cos(v); }
};
struct ExpF {
  double operator()(double v) const { return std::exp(v); }
};
struct LogF {
  double operator()(double v) const { return std::log(v); }
};
struct FloorF {
  double operator()(double v) const { return std::floor(v); }
};
struct NotP {
  std::uint8_t operator()(std::uint8_t v) const { return v ? 0 : 1; }
};
struct CastF64FromI {
  double operator()(std::int64_t v) const { return static_cast<double>(v); }
};
struct CastF64FromP {
  double operator()(std::uint8_t v) const { return static_cast<double>(v); }
};
struct CastI64FromF {
  std::int64_t operator()(double v) const {
    return static_cast<std::int64_t>(v);
  }
};
struct CastI64FromP {
  std::int64_t operator()(std::uint8_t v) const {
    return static_cast<std::int64_t>(v);
  }
};
template <typename T>
struct MinT {
  T operator()(T a, T b) const { return std::min(a, b); }
};
template <typename T>
struct MaxT {
  T operator()(T a, T b) const { return std::max(a, b); }
};
struct Atan2F {
  double operator()(double y, double x) const { return std::atan2(y, x); }
};
struct FmodF {
  double operator()(double a, double b) const { return std::fmod(a, b); }
};
struct ModI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a % b;
  }
};
struct AndP {
  std::uint8_t operator()(std::uint8_t a, std::uint8_t b) const {
    return (a && b) ? 1 : 0;
  }
};
struct OrP {
  std::uint8_t operator()(std::uint8_t a, std::uint8_t b) const {
    return (a || b) ? 1 : 0;
  }
};
struct XorP {
  std::uint8_t operator()(std::uint8_t a, std::uint8_t b) const {
    return (a != b) ? 1 : 0;
  }
};
struct AndI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a & b;
  }
};
struct OrI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a | b;
  }
};
struct XorI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return a ^ b;
  }
};
struct ShlI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << b);
  }
};
struct ShrI {
  std::int64_t operator()(std::int64_t a, std::int64_t b) const {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> b);
  }
};
template <typename T, typename P>
struct CmpWrap {
  std::uint8_t operator()(T a, T b) const { return P{}(a, b) ? 1 : 0; }
};

// --- step-function selection ------------------------------------------------

StepFn load_fn(DType d, const Xform& x) {
  const bool ident = x.empty();
  const bool scalar = x.size() == 1 && x[0].kind == XKind::kZero;
  switch (d) {
    case DType::kF64:
      return ident ? &load_identity<double>
                   : scalar ? &load_scalar<double> : &load_xform<double>;
    case DType::kI64:
      return ident ? &load_identity<std::int64_t>
                   : scalar ? &load_scalar<std::int64_t>
                            : &load_xform<std::int64_t>;
    case DType::kPred:
      return ident ? &load_identity<std::uint8_t>
                   : scalar ? &load_scalar<std::uint8_t>
                            : &load_xform<std::uint8_t>;
  }
  return nullptr;
}

template <typename T>
StepFn same_type_unary_fn(Opcode op) {
  switch (op) {
    case Opcode::kNeg:
      return &unary_step<T, T, Neg<T>>;
    case Opcode::kAbs:
      return &unary_step<T, T, Abs<T>>;
    case Opcode::kSign:
      return &unary_step<T, T, Sign<T>>;
    default:
      return nullptr;
  }
}

StepFn f64_unary_fn(Opcode op) {
  switch (op) {
    case Opcode::kSqrt:
      return &unary_step<double, double, SqrtF>;
    case Opcode::kTanh:
      return &unary_step<double, double, TanhF>;
    case Opcode::kSin:
      return &unary_step<double, double, SinF>;
    case Opcode::kCos:
      return &unary_step<double, double, CosF>;
    case Opcode::kExp:
      return &unary_step<double, double, ExpF>;
    case Opcode::kLog:
      return &unary_step<double, double, LogF>;
    case Opcode::kFloor:
      return &unary_step<double, double, FloorF>;
    default:
      return nullptr;
  }
}

template <typename T>
StepFn arith_fn(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
      return &binary_step<T, T, std::plus<T>>;
    case Opcode::kSub:
      return &binary_step<T, T, std::minus<T>>;
    case Opcode::kMul:
      return &binary_step<T, T, std::multiplies<T>>;
    case Opcode::kDiv:
      return &binary_step<T, T, std::divides<T>>;
    case Opcode::kMin:
      return &binary_step<T, T, MinT<T>>;
    case Opcode::kMax:
      return &binary_step<T, T, MaxT<T>>;
    case Opcode::kMod:
      if constexpr (std::is_same_v<T, double>) {
        return &binary_step<double, double, FmodF>;
      } else {
        return &binary_step<std::int64_t, std::int64_t, ModI>;
      }
    default:
      return nullptr;
  }
}

template <typename T>
StepFn cmp_fn(Opcode op) {
  switch (op) {
    case Opcode::kLt:
      return &binary_step<std::uint8_t, T, CmpWrap<T, std::less<T>>>;
    case Opcode::kLe:
      return &binary_step<std::uint8_t, T, CmpWrap<T, std::less_equal<T>>>;
    case Opcode::kGt:
      return &binary_step<std::uint8_t, T, CmpWrap<T, std::greater<T>>>;
    case Opcode::kGe:
      return &binary_step<std::uint8_t, T,
                          CmpWrap<T, std::greater_equal<T>>>;
    case Opcode::kEq:
      return &binary_step<std::uint8_t, T, CmpWrap<T, std::equal_to<T>>>;
    case Opcode::kNe:
      return &binary_step<std::uint8_t, T,
                          CmpWrap<T, std::not_equal_to<T>>>;
    default:
      return nullptr;
  }
}

std::string xform_key(const Xform& x) {
  std::string key;
  for (const auto& s : x) {
    key += static_cast<char>('a' + static_cast<int>(s.kind));
    key += std::to_string(s.a);
    key += ',';
    key += std::to_string(s.b);
    key += ';';
  }
  return key;
}

// --- expression lowering ----------------------------------------------------

/// Lowers the fused expression tree rooted at one materialized value
/// into the loop's bytecode, composing index transforms through
/// structural ops and memoizing on (instruction, transform) so shared
/// subexpressions evaluate once per block.
class ExprLowering {
 public:
  ExprLowering(const HloModule& m, const std::vector<char>& mat,
               InstrId root, Loop* loop)
      : m_(m), mat_(mat), root_(root), loop_(loop) {}

  int lower(InstrId id, const Xform& x);

 private:
  int alloc(DType d) {
    switch (d) {
      case DType::kF64:
        return loop_->n_f64++;
      case DType::kI64:
        return loop_->n_i64++;
      case DType::kPred:
        return loop_->n_pred++;
    }
    return -1;
  }

  /// Transform an elementwise operand sees: a size-1 operand is read at
  /// element 0 for every lane (eval.cpp's scalar-broadcast accessors);
  /// anything else inherits the consumer's index.
  Xform ex(InstrId op, const Xform& x) const {
    if (m_.at(op).shape.num_elements() == 1) {
      return Xform{{XKind::kZero, 0, 0}};
    }
    return x;
  }

  [[noreturn]] void reject(const std::string& why) const {
    throw LoweringError(why + " (module '" + m_.name +
                        "', instruction " + std::to_string(root_) + ")");
  }

  const HloModule& m_;
  const std::vector<char>& mat_;
  InstrId root_;
  Loop* loop_;
  std::map<std::pair<InstrId, std::string>, int> memo_;
};

int ExprLowering::lower(InstrId id, const Xform& x) {
  const auto key = std::make_pair(id, xform_key(x));
  if (const auto it = memo_.find(key); it != memo_.end()) {
    return it->second;
  }
  const HloInstruction& in = m_.at(id);
  int reg = -1;

  if (mat_[static_cast<std::size_t>(id)] != 0 && id != root_) {
    // Group boundary: the value exists as a Literal by the time this
    // loop runs; load it through the composed index transform.
    reg = alloc(in.dtype);
    Step s;
    s.out = reg;
    s.slot = id;
    s.xform = x;
    s.fn = load_fn(in.dtype, x);
    loop_->steps.push_back(std::move(s));
    memo_.emplace(key, reg);
    return reg;
  }

  switch (in.opcode) {
    case Opcode::kIota: {
      reg = alloc(DType::kI64);
      Step s;
      s.out = reg;
      s.xform = x;
      s.fn = &iota_step;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kReshape:
      // Flat copy: same value at the same flat index.
      reg = lower(in.operands[0], x);
      break;
    case Opcode::kBroadcastCol: {
      Xform cx = x;
      cx.push_back({XKind::kDiv, in.shape.dim(1), 0});
      reg = lower(in.operands[0], cx);
      break;
    }
    case Opcode::kBroadcastRow: {
      Xform cx = x;
      cx.push_back({XKind::kMod, in.shape.dim(1), 0});
      reg = lower(in.operands[0], cx);
      break;
    }
    case Opcode::kSliceCol: {
      Xform cx = x;
      cx.push_back({XKind::kMulAdd, m_.at(in.operands[0]).shape.dim(1),
                    in.i0});
      reg = lower(in.operands[0], cx);
      break;
    }
    case Opcode::kGather: {
      // Table is always materialized; indices are read directly at the
      // output index (no scalar broadcast in eval.cpp's gather).
      if (m_.at(in.operands[1]).dtype != DType::kI64) {
        reject("gather indices must be i64");
      }
      const int idx_reg = lower(in.operands[1], x);
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = idx_reg;
      s.slot = in.operands[0];
      switch (in.dtype) {
        case DType::kF64:
          s.fn = &gather_step<double>;
          break;
        case DType::kI64:
          s.fn = &gather_step<std::int64_t>;
          break;
        case DType::kPred:
          s.fn = &gather_step<std::uint8_t>;
          break;
      }
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kSelect: {
      if (m_.at(in.operands[0]).dtype != DType::kPred) {
        reject("select predicate must be pred");
      }
      for (int k = 1; k <= 2; ++k) {
        if (m_.at(in.operands[k]).dtype != in.dtype) {
          reject("dtype-mixed fusion group: select branch dtype differs "
                 "from result");
        }
      }
      const int p = lower(in.operands[0], ex(in.operands[0], x));
      const int t = lower(in.operands[1], ex(in.operands[1], x));
      const int f = lower(in.operands[2], ex(in.operands[2], x));
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = p;
      s.in1 = t;
      s.in2 = f;
      switch (in.dtype) {
        case DType::kF64:
          s.fn = &select_step<double>;
          break;
        case DType::kI64:
          s.fn = &select_step<std::int64_t>;
          break;
        case DType::kPred:
          s.fn = &select_step<std::uint8_t>;
          break;
      }
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kClamp: {
      if (in.dtype == DType::kPred) {
        reject("clamp on pred");
      }
      for (int k = 0; k <= 2; ++k) {
        if (m_.at(in.operands[k]).dtype != in.dtype) {
          reject("dtype-mixed fusion group: clamp operand dtype differs "
                 "from result");
        }
      }
      const int v = lower(in.operands[0], ex(in.operands[0], x));
      const int lo = lower(in.operands[1], ex(in.operands[1], x));
      const int hi = lower(in.operands[2], ex(in.operands[2], x));
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = v;
      s.in1 = lo;
      s.in2 = hi;
      s.fn = in.dtype == DType::kF64 ? &clamp_step<double>
                                     : &clamp_step<std::int64_t>;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kCastF64: {
      const DType ad = m_.at(in.operands[0]).dtype;
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      if (ad == DType::kF64) {
        reg = ra;  // identity cast: reuse the operand's register
        break;
      }
      reg = alloc(DType::kF64);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.fn = ad == DType::kI64
                 ? &unary_step<double, std::int64_t, CastF64FromI>
                 : &unary_step<double, std::uint8_t, CastF64FromP>;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kCastI64: {
      const DType ad = m_.at(in.operands[0]).dtype;
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      if (ad == DType::kI64) {
        reg = ra;
        break;
      }
      reg = alloc(DType::kI64);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.fn = ad == DType::kF64
                 ? &unary_step<std::int64_t, double, CastI64FromF>
                 : &unary_step<std::int64_t, std::uint8_t, CastI64FromP>;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kNot: {
      if (in.dtype != DType::kPred ||
          m_.at(in.operands[0]).dtype != DType::kPred) {
        reject("logical-not needs pred operand and result");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      reg = alloc(DType::kPred);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.fn = &unary_step<std::uint8_t, std::uint8_t, NotP>;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kSign: {
      if (in.dtype == DType::kPred ||
          m_.at(in.operands[0]).dtype != in.dtype) {
        reject("dtype-mixed fusion group: unary operand dtype differs "
               "from result");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.fn = in.dtype == DType::kF64
                 ? same_type_unary_fn<double>(in.opcode)
                 : same_type_unary_fn<std::int64_t>(in.opcode);
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kSqrt:
    case Opcode::kTanh:
    case Opcode::kSin:
    case Opcode::kCos:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kFloor: {
      if (in.dtype != DType::kF64 ||
          m_.at(in.operands[0]).dtype != DType::kF64) {
        reject("transcendental on non-f64");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      reg = alloc(DType::kF64);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.fn = f64_unary_fn(in.opcode);
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor: {
      const DType ad = m_.at(in.operands[0]).dtype;
      const DType bd = m_.at(in.operands[1]).dtype;
      if (ad != in.dtype || bd != in.dtype || in.dtype == DType::kF64) {
        reject("dtype-mixed fusion group: logic operand dtype differs "
               "from result");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      const int rb = lower(in.operands[1], ex(in.operands[1], x));
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.in1 = rb;
      if (in.dtype == DType::kPred) {
        s.fn = in.opcode == Opcode::kAnd
                   ? &binary_step<std::uint8_t, std::uint8_t, AndP>
               : in.opcode == Opcode::kOr
                   ? &binary_step<std::uint8_t, std::uint8_t, OrP>
                   : &binary_step<std::uint8_t, std::uint8_t, XorP>;
      } else {
        s.fn = in.opcode == Opcode::kAnd
                   ? &binary_step<std::int64_t, std::int64_t, AndI>
               : in.opcode == Opcode::kOr
                   ? &binary_step<std::int64_t, std::int64_t, OrI>
                   : &binary_step<std::int64_t, std::int64_t, XorI>;
      }
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kShl:
    case Opcode::kShr: {
      if (in.dtype != DType::kI64 ||
          m_.at(in.operands[0]).dtype != DType::kI64 ||
          m_.at(in.operands[1]).dtype != DType::kI64) {
        reject("shift on non-i64");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      const int rb = lower(in.operands[1], ex(in.operands[1], x));
      reg = alloc(DType::kI64);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.in1 = rb;
      s.fn = in.opcode == Opcode::kShl
                 ? &binary_step<std::int64_t, std::int64_t, ShlI>
                 : &binary_step<std::int64_t, std::int64_t, ShrI>;
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAtan2:
    case Opcode::kMod: {
      const DType ad = m_.at(in.operands[0]).dtype;
      const DType bd = m_.at(in.operands[1]).dtype;
      if (in.dtype == DType::kPred || ad != in.dtype || bd != in.dtype) {
        reject("dtype-mixed fusion group: arithmetic operand dtype "
               "differs from result");
      }
      if (in.opcode == Opcode::kAtan2 && in.dtype != DType::kF64) {
        reject("atan2 on non-f64");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      const int rb = lower(in.operands[1], ex(in.operands[1], x));
      reg = alloc(in.dtype);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.in1 = rb;
      if (in.opcode == Opcode::kAtan2) {
        s.fn = &binary_step<double, double, Atan2F>;
      } else {
        s.fn = in.dtype == DType::kF64 ? arith_fn<double>(in.opcode)
                                       : arith_fn<std::int64_t>(in.opcode);
      }
      loop_->steps.push_back(std::move(s));
      break;
    }
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
    case Opcode::kEq:
    case Opcode::kNe: {
      // eval.cpp keys the comparison on the *first operand's* dtype and
      // reads both operands with it.
      const DType ad = m_.at(in.operands[0]).dtype;
      const DType bd = m_.at(in.operands[1]).dtype;
      if (ad != bd || ad == DType::kPred) {
        reject("dtype-mixed fusion group: comparison operands disagree");
      }
      const int ra = lower(in.operands[0], ex(in.operands[0], x));
      const int rb = lower(in.operands[1], ex(in.operands[1], x));
      reg = alloc(DType::kPred);
      Step s;
      s.out = reg;
      s.in0 = ra;
      s.in1 = rb;
      s.fn = ad == DType::kI64 ? cmp_fn<std::int64_t>(in.opcode)
                               : cmp_fn<double>(in.opcode);
      loop_->steps.push_back(std::move(s));
      break;
    }
    default:
      // kParam/kConstant are always materialized, heavy ops are always
      // loop roots — reaching them here means the materialization scan
      // and the lowering disagree.
      reject(std::string("cannot fuse opcode ") + to_string(in.opcode));
  }

  memo_.emplace(key, reg);
  return reg;
}

}  // namespace
}  // namespace fused

// --- lowering ---------------------------------------------------------------

std::shared_ptr<const FusedExecutable> FusedExecutable::lower(
    const Compiled& c) {
  using namespace fused;
  const HloModule& m = c.module;
  const std::size_t n = m.size();

  // Materialization set: loop boundaries.  Everything else lives only as
  // a register block inside some loop body.
  std::vector<char> mat(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const HloInstruction& in = m.instructions[i];
    if (in.opcode == Opcode::kParam || in.opcode == Opcode::kConstant) {
      mat[i] = 1;
    }
    if (is_heavy(in.opcode)) {
      mat[i] = 1;  // heavy ops close their group; they root a loop
    }
    for (const auto op : in.operands) {
      if (c.group_of[static_cast<std::size_t>(op)] !=
          c.group_of[i]) {
        mat[static_cast<std::size_t>(op)] = 1;
      }
    }
    if (in.opcode == Opcode::kGather) {
      mat[static_cast<std::size_t>(in.operands[0])] = 1;
    }
    if (in.opcode == Opcode::kScatterAdd ||
        in.opcode == Opcode::kScatterSet) {
      mat[static_cast<std::size_t>(in.operands[0])] = 1;
      mat[static_cast<std::size_t>(in.operands[1])] = 1;
    }
  }
  for (const auto r : m.roots) {
    mat[static_cast<std::size_t>(r)] = 1;
  }

  auto exe = std::shared_ptr<FusedExecutable>(new FusedExecutable());
  for (std::size_t i = 0; i < n; ++i) {
    const HloInstruction& in = m.instructions[i];
    if (mat[i] == 0 || in.opcode == Opcode::kParam ||
        in.opcode == Opcode::kConstant) {
      continue;
    }
    ++exe->n_materialized_;
    const auto id = static_cast<InstrId>(i);
    Loop loop;
    loop.root = id;
    loop.dtype = in.dtype;
    ExprLowering ll(m, mat, id, &loop);

    switch (in.opcode) {
      case Opcode::kReduceSum: {
        const InstrId a = in.operands[0];
        const Shape& ash = m.at(a).shape;
        if (in.dtype == DType::kPred || m.at(a).dtype != in.dtype) {
          throw LoweringError("reduce_sum dtype mismatch in module '" +
                              m.name + "'");
        }
        if (in.i0 == -1) {
          loop.kind = LoopKind::kReduceSumFull;
          loop.domain = ash.num_elements();
        } else {
          if (ash.rank() != 2) {
            throw LoweringError(
                "axis reduce_sum needs a rank-2 operand in module '" +
                m.name + "'");
          }
          loop.kind = LoopKind::kReduceSumRows;
          loop.rows = ash.dim(0);
          loop.cols = ash.dim(1);
          loop.domain = loop.rows * loop.cols;
        }
        loop.value_reg = ll.lower(a, {});
        break;
      }
      case Opcode::kReduceMax: {
        const InstrId a = in.operands[0];
        if (in.dtype == DType::kPred || m.at(a).dtype != in.dtype) {
          throw LoweringError("reduce_max dtype mismatch in module '" +
                              m.name + "'");
        }
        loop.kind = LoopKind::kReduceMax;
        loop.domain = m.at(a).shape.num_elements();
        loop.value_reg = ll.lower(a, {});
        break;
      }
      case Opcode::kDot: {
        const InstrId a = in.operands[0];
        const InstrId b = in.operands[1];
        if (m.at(a).dtype != DType::kF64 || m.at(b).dtype != DType::kF64) {
          throw LoweringError("dot on non-f64 in module '" + m.name + "'");
        }
        loop.kind = LoopKind::kDot;
        loop.domain = m.at(a).shape.num_elements();
        loop.value_reg = ll.lower(a, {});
        loop.value_reg2 = ll.lower(b, {});
        break;
      }
      case Opcode::kScatterAdd:
      case Opcode::kScatterSet: {
        const InstrId base = in.operands[0];
        const InstrId idx = in.operands[1];
        const InstrId upd = in.operands[2];
        if (m.at(idx).dtype != DType::kI64) {
          throw LoweringError("scatter indices must be i64 in module '" +
                              m.name + "'");
        }
        if (in.dtype == DType::kPred || m.at(upd).dtype != in.dtype ||
            m.at(base).dtype != in.dtype) {
          throw LoweringError("scatter dtype mismatch in module '" +
                              m.name + "'");
        }
        loop.kind = LoopKind::kScatter;
        loop.scatter_set = in.opcode == Opcode::kScatterSet;
        loop.base_slot = base;
        loop.idx_slot = idx;
        loop.domain = m.at(idx).shape.num_elements();
        loop.value_reg = ll.lower(upd, {});
        break;
      }
      default:
        loop.kind = LoopKind::kMap;
        loop.domain = in.shape.num_elements();
        loop.value_reg = ll.lower(id, {});
        break;
    }

    exe->max_f64_ = std::max(exe->max_f64_, loop.n_f64);
    exe->max_i64_ = std::max(exe->max_i64_, loop.n_i64);
    exe->max_pred_ = std::max(exe->max_pred_, loop.n_pred);
    exe->loops_.push_back(std::move(loop));
  }
  return exe;
}

std::size_t FusedExecutable::step_count() const {
  std::size_t n = 0;
  for (const auto& l : loops_) {
    n += l.steps.size();
  }
  return n;
}

// --- execution --------------------------------------------------------------

namespace fused {
namespace {

void run_steps(const Loop& loop, ExecState& st, std::int64_t base,
               std::int64_t n) {
  for (const Step& s : loop.steps) {
    s.fn(s, st, base, n);
  }
}

void exec_loop(const Loop& loop, const HloModule& m, ExecState& st,
               FusedExecutable::RunResult& res) {
  const HloInstruction& in = m.at(loop.root);
  const auto root = static_cast<std::size_t>(loop.root);
  Literal out;

  switch (loop.kind) {
    case LoopKind::kMap: {
      out = Literal(in.shape, in.dtype);
      for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
        const std::int64_t nb = std::min(kBlock, loop.domain - base);
        run_steps(loop, st, base, nb);
        const auto vr = static_cast<std::size_t>(loop.value_reg);
        switch (loop.dtype) {
          case DType::kF64:
            std::copy_n(st.f64[vr].data(), nb, out.f64().data() + base);
            break;
          case DType::kI64:
            std::copy_n(st.i64[vr].data(), nb, out.i64().data() + base);
            break;
          case DType::kPred:
            std::copy_n(st.pred[vr].data(), nb, out.pred().data() + base);
            break;
        }
      }
      break;
    }
    case LoopKind::kReduceSumFull: {
      out = Literal(Shape{}, in.dtype);
      const auto vr = static_cast<std::size_t>(loop.value_reg);
      if (loop.dtype == DType::kF64) {
        double s = 0.0;
        for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
          const std::int64_t nb = std::min(kBlock, loop.domain - base);
          run_steps(loop, st, base, nb);
          const double* v = st.f64[vr].data();
          for (std::int64_t k = 0; k < nb; ++k) s += v[k];
        }
        out.f64()[0] = s;
      } else {
        std::int64_t s = 0;
        for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
          const std::int64_t nb = std::min(kBlock, loop.domain - base);
          run_steps(loop, st, base, nb);
          const std::int64_t* v = st.i64[vr].data();
          for (std::int64_t k = 0; k < nb; ++k) s += v[k];
        }
        out.i64()[0] = s;
      }
      break;
    }
    case LoopKind::kReduceSumRows: {
      out = Literal(in.shape, in.dtype);
      const auto vr = static_cast<std::size_t>(loop.value_reg);
      for (std::int64_t r = 0; r < loop.rows; ++r) {
        if (loop.dtype == DType::kF64) {
          double s = 0.0;
          for (std::int64_t c0 = 0; c0 < loop.cols; c0 += kBlock) {
            const std::int64_t nb = std::min(kBlock, loop.cols - c0);
            run_steps(loop, st, r * loop.cols + c0, nb);
            const double* v = st.f64[vr].data();
            for (std::int64_t k = 0; k < nb; ++k) s += v[k];
          }
          out.f64()[static_cast<std::size_t>(r)] = s;
        } else {
          std::int64_t s = 0;
          for (std::int64_t c0 = 0; c0 < loop.cols; c0 += kBlock) {
            const std::int64_t nb = std::min(kBlock, loop.cols - c0);
            run_steps(loop, st, r * loop.cols + c0, nb);
            const std::int64_t* v = st.i64[vr].data();
            for (std::int64_t k = 0; k < nb; ++k) s += v[k];
          }
          out.i64()[static_cast<std::size_t>(r)] = s;
        }
      }
      break;
    }
    case LoopKind::kReduceMax: {
      out = Literal(Shape{}, in.dtype);
      const auto vr = static_cast<std::size_t>(loop.value_reg);
      if (loop.dtype == DType::kF64) {
        double mx = -std::numeric_limits<double>::infinity();
        for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
          const std::int64_t nb = std::min(kBlock, loop.domain - base);
          run_steps(loop, st, base, nb);
          const double* v = st.f64[vr].data();
          for (std::int64_t k = 0; k < nb; ++k) mx = std::max(mx, v[k]);
        }
        out.f64()[0] = mx;
      } else {
        std::int64_t mx = std::numeric_limits<std::int64_t>::min();
        for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
          const std::int64_t nb = std::min(kBlock, loop.domain - base);
          run_steps(loop, st, base, nb);
          const std::int64_t* v = st.i64[vr].data();
          for (std::int64_t k = 0; k < nb; ++k) mx = std::max(mx, v[k]);
        }
        out.i64()[0] = mx;
      }
      break;
    }
    case LoopKind::kDot: {
      out = Literal(Shape{}, DType::kF64);
      const auto va = static_cast<std::size_t>(loop.value_reg);
      const auto vb = static_cast<std::size_t>(loop.value_reg2);
      double s = 0.0;
      for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
        const std::int64_t nb = std::min(kBlock, loop.domain - base);
        run_steps(loop, st, base, nb);
        const double* a = st.f64[va].data();
        const double* b = st.f64[vb].data();
        for (std::int64_t k = 0; k < nb; ++k) s += a[k] * b[k];
      }
      out.f64()[0] = s;
      break;
    }
    case LoopKind::kScatter: {
      // Same order as eval.cpp: copy the base, then apply updates in
      // ascending index order, dropping out-of-range lanes.
      out = *(*st.vals)[static_cast<std::size_t>(loop.base_slot)];
      const auto idxs =
          (*st.vals)[static_cast<std::size_t>(loop.idx_slot)]->i64();
      const std::int64_t t = out.num_elements();
      const auto vr = static_cast<std::size_t>(loop.value_reg);
      for (std::int64_t base = 0; base < loop.domain; base += kBlock) {
        const std::int64_t nb = std::min(kBlock, loop.domain - base);
        run_steps(loop, st, base, nb);
        if (loop.dtype == DType::kF64) {
          const double* upd = st.f64[vr].data();
          auto dst = out.f64();
          for (std::int64_t k = 0; k < nb; ++k) {
            const std::int64_t j =
                idxs[static_cast<std::size_t>(base + k)];
            if (j < 0 || j >= t) continue;
            if (loop.scatter_set) {
              dst[static_cast<std::size_t>(j)] = upd[k];
            } else {
              dst[static_cast<std::size_t>(j)] += upd[k];
            }
          }
        } else {
          const std::int64_t* upd = st.i64[vr].data();
          auto dst = out.i64();
          for (std::int64_t k = 0; k < nb; ++k) {
            const std::int64_t j =
                idxs[static_cast<std::size_t>(base + k)];
            if (j < 0 || j >= t) continue;
            if (loop.scatter_set) {
              dst[static_cast<std::size_t>(j)] = upd[k];
            } else {
              dst[static_cast<std::size_t>(j)] += upd[k];
            }
          }
        }
      }
      break;
    }
  }

  res.owned[root] = std::move(out);
  res.vals[root] = &res.owned[root];
}

}  // namespace
}  // namespace fused

FusedExecutable::RunResult FusedExecutable::run(
    const HloModule& m, std::span<const Literal> args) const {
  using namespace fused;
  RunResult res;
  const std::size_t n = m.size();
  res.owned.resize(n);
  res.vals.assign(n, nullptr);
  for (std::size_t p = 0; p < m.params.size(); ++p) {
    res.vals[static_cast<std::size_t>(m.params[p])] = &args[p];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (m.instructions[i].opcode == Opcode::kConstant) {
      res.vals[i] = &*m.instructions[i].literal;
    }
  }

  ExecState st;
  st.f64.assign(static_cast<std::size_t>(max_f64_),
                std::vector<double>(static_cast<std::size_t>(kBlock)));
  st.i64.assign(static_cast<std::size_t>(max_i64_),
                std::vector<std::int64_t>(static_cast<std::size_t>(kBlock)));
  st.pred.assign(static_cast<std::size_t>(max_pred_),
                 std::vector<std::uint8_t>(static_cast<std::size_t>(kBlock)));
  st.vals = &res.vals;

  for (const auto& loop : loops_) {
    exec_loop(loop, m, st, res);
  }
  return res;
}

std::vector<Literal> execute_compiled(const Compiled& compiled,
                                      std::span<const Literal> args,
                                      ExecutionReport* report) {
  const HloModule& m = compiled.module;
  detail::validate_args(m, args);
  if (!compiled.fused) {
    compiled.fused = FusedExecutable::lower(compiled);
  }
  const auto res = compiled.fused->run(m, args);

  if (report != nullptr) {
    *report = detail::build_report(
        compiled, [&res, &m](InstrId scatter) {
          const auto idx = m.at(scatter).operands[1];
          return res.vals[static_cast<std::size_t>(idx)]->i64();
        });
  }

  std::vector<Literal> outputs;
  outputs.reserve(m.roots.size());
  for (const auto r : m.roots) {
    outputs.push_back(*res.vals[static_cast<std::size_t>(r)]);
  }
  return outputs;
}

}  // namespace toast::xla
