#include "xla/passes.hpp"

#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "xla/eval.hpp"

namespace toast::xla {

namespace {

/// Rebuild helper: copy instruction with operand ids remapped.
HloInstruction remap(const HloInstruction& in,
                     const std::vector<InstrId>& id_map) {
  HloInstruction out = in;
  for (auto& op : out.operands) {
    op = id_map[static_cast<std::size_t>(op)];
  }
  return out;
}

void remap_roots_and_params(const HloModule& src, HloModule& dst,
                            const std::vector<InstrId>& id_map) {
  dst.name = src.name;
  dst.params.clear();
  for (const auto p : src.params) {
    dst.params.push_back(id_map[static_cast<std::size_t>(p)]);
  }
  dst.roots.clear();
  for (const auto r : src.roots) {
    dst.roots.push_back(id_map[static_cast<std::size_t>(r)]);
  }
}

// Only fold scalars and tiny aggregates: folding a big iota/broadcast
// would materialize as a constant what XLA generates inside the kernel.
constexpr std::int64_t kMaxFoldElements = 16;

}  // namespace

HloModule fold_constants(HloModule module, int* folded) {
  HloModule out;
  std::vector<InstrId> id_map(module.size());
  int count = 0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    HloInstruction in = remap(module.instructions[i], id_map);
    const bool is_leaf =
        in.opcode == Opcode::kParam || in.opcode == Opcode::kConstant;
    bool all_const = !is_leaf;
    for (const auto op : in.operands) {
      if (out.at(op).opcode != Opcode::kConstant) {
        all_const = false;
        break;
      }
    }
    if (all_const && in.shape.num_elements() <= kMaxFoldElements) {
      std::vector<const Literal*> ops;
      ops.reserve(in.operands.size());
      for (const auto op : in.operands) {
        ops.push_back(&*out.at(op).literal);
      }
      Literal value = evaluate_instruction(in, ops);
      HloInstruction cst;
      cst.opcode = Opcode::kConstant;
      cst.dtype = in.dtype;
      cst.shape = in.shape;
      cst.literal = std::move(value);
      out.instructions.push_back(std::move(cst));
      ++count;
    } else {
      out.instructions.push_back(std::move(in));
    }
    id_map[i] = static_cast<InstrId>(out.instructions.size() - 1);
  }
  remap_roots_and_params(module, out, id_map);
  if (folded != nullptr) *folded = count;
  return out;
}

HloModule simplify_algebra(HloModule module, int* simplified) {
  // Replace trivial instructions with forwarding to an operand: since
  // downstream passes remap through id_map, forwarding is expressed by
  // rebuilding the module and mapping the instruction's id onto the
  // surviving operand's id.
  HloModule out;
  std::vector<InstrId> id_map(module.size());
  int count = 0;

  auto is_scalar_const = [&](InstrId id, double value) {
    const auto& in = out.at(id);
    return in.opcode == Opcode::kConstant && in.literal->num_elements() == 1 &&
           in.dtype != DType::kPred && in.literal->as_double(0) == value;
  };

  for (std::size_t i = 0; i < module.size(); ++i) {
    HloInstruction in = remap(module.instructions[i], id_map);
    InstrId forward = -1;
    switch (in.opcode) {
      case Opcode::kAdd:
      case Opcode::kSub:
        // x + 0, 0 + x, x - 0.  Only when the shape survives (a scalar
        // zero on the non-scalar side).
        if (in.operands.size() == 2) {
          if (is_scalar_const(in.operands[1], 0.0) &&
              out.at(in.operands[0]).shape == in.shape) {
            forward = in.operands[0];
          } else if (in.opcode == Opcode::kAdd &&
                     is_scalar_const(in.operands[0], 0.0) &&
                     out.at(in.operands[1]).shape == in.shape) {
            forward = in.operands[1];
          }
        }
        break;
      case Opcode::kMul:
        if (is_scalar_const(in.operands[1], 1.0) &&
            out.at(in.operands[0]).shape == in.shape) {
          forward = in.operands[0];
        } else if (is_scalar_const(in.operands[0], 1.0) &&
                   out.at(in.operands[1]).shape == in.shape) {
          forward = in.operands[1];
        }
        break;
      case Opcode::kDiv:
        if (is_scalar_const(in.operands[1], 1.0) &&
            out.at(in.operands[0]).shape == in.shape) {
          forward = in.operands[0];
        }
        break;
      case Opcode::kNeg:
        if (out.at(in.operands[0]).opcode == Opcode::kNeg) {
          forward = out.at(in.operands[0]).operands[0];
        }
        break;
      case Opcode::kSelect:
        if (in.operands[1] == in.operands[2] &&
            out.at(in.operands[1]).shape == in.shape) {
          forward = in.operands[1];
        }
        break;
      case Opcode::kReshape:
        if (out.at(in.operands[0]).shape == in.shape) {
          forward = in.operands[0];
        }
        break;
      default:
        break;
    }
    if (forward >= 0) {
      id_map[i] = forward;
      ++count;
      continue;
    }
    out.instructions.push_back(std::move(in));
    id_map[i] = static_cast<InstrId>(out.instructions.size() - 1);
  }
  remap_roots_and_params(module, out, id_map);
  if (simplified != nullptr) *simplified = count;
  return out;
}

std::vector<std::string> verify(const HloModule& module) {
  std::vector<std::string> problems;
  std::vector<bool> param_seen;
  for (std::size_t i = 0; i < module.size(); ++i) {
    const auto& in = module.instructions[i];
    for (const auto op : in.operands) {
      if (op < 0 || static_cast<std::size_t>(op) >= i) {
        problems.push_back("instruction %" + std::to_string(i) +
                           " uses operand %" + std::to_string(op) +
                           " out of SSA order");
      }
    }
    if (in.opcode == Opcode::kConstant && !in.literal.has_value()) {
      problems.push_back("constant %" + std::to_string(i) +
                         " has no literal payload");
    }
    if (in.opcode == Opcode::kParam) {
      const auto idx = static_cast<std::size_t>(in.i0);
      if (param_seen.size() <= idx) {
        param_seen.resize(idx + 1, false);
      }
      if (param_seen[idx]) {
        problems.push_back("duplicate parameter index " +
                           std::to_string(in.i0));
      }
      param_seen[idx] = true;
    }
  }
  for (std::size_t p = 0; p < param_seen.size(); ++p) {
    if (!param_seen[p]) {
      problems.push_back("parameter index " + std::to_string(p) +
                         " missing (not dense)");
    }
  }
  for (const auto r : module.roots) {
    if (r < 0 || static_cast<std::size_t>(r) >= module.size()) {
      problems.push_back("root %" + std::to_string(r) + " out of range");
    }
  }
  return problems;
}

HloModule rewrite_dots(HloModule module, int* rewrites) {
  int count = 0;
  for (auto& in : module.instructions) {
    if (in.opcode != Opcode::kReduceSum || in.i0 != -1 ||
        in.dtype != DType::kF64) {
      continue;
    }
    const auto& prod = module.at(in.operands[0]);
    if (prod.opcode != Opcode::kMul || prod.dtype != DType::kF64 ||
        prod.shape.rank() != 1) {
      continue;
    }
    const auto& lhs = module.at(prod.operands[0]);
    const auto& rhs = module.at(prod.operands[1]);
    if (lhs.shape != rhs.shape || lhs.shape.rank() != 1) {
      continue;  // scalar-broadcast multiplies are not dots
    }
    in.opcode = Opcode::kDot;
    in.operands = prod.operands;
    in.i0 = 0;
    ++count;
  }
  if (rewrites != nullptr) *rewrites = count;
  return module;
}

HloModule eliminate_common_subexpressions(HloModule module, int* removed) {
  HloModule out;
  std::vector<InstrId> id_map(module.size());
  std::map<std::string, InstrId> seen;
  int count = 0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    HloInstruction in = remap(module.instructions[i], id_map);
    std::ostringstream key;
    key << static_cast<int>(in.opcode) << "|" << static_cast<int>(in.dtype)
        << "|" << in.shape.to_string() << "|" << in.i0 << "|";
    for (const auto op : in.operands) {
      key << op << ",";
    }
    bool hashable = true;
    if (in.opcode == Opcode::kConstant) {
      // Only dedupe small constants by value.
      if (in.literal->num_elements() <= 16) {
        for (std::int64_t k = 0; k < in.literal->num_elements(); ++k) {
          key << in.literal->as_double(k) << ";";
        }
      } else {
        hashable = false;
      }
    }
    if (in.opcode == Opcode::kParam) {
      hashable = false;
    }
    if (hashable) {
      const auto it = seen.find(key.str());
      if (it != seen.end()) {
        id_map[i] = it->second;
        ++count;
        continue;
      }
    }
    out.instructions.push_back(std::move(in));
    const auto new_id = static_cast<InstrId>(out.instructions.size() - 1);
    id_map[i] = new_id;
    if (hashable) {
      seen.emplace(key.str(), new_id);
    }
  }
  remap_roots_and_params(module, out, id_map);
  if (removed != nullptr) *removed = count;
  return out;
}

HloModule eliminate_dead_code(HloModule module, int* removed) {
  std::vector<bool> live(module.size(), false);
  std::vector<InstrId> stack(module.roots);
  // Parameters always survive (they define the calling convention).
  for (const auto p : module.params) {
    stack.push_back(p);
  }
  while (!stack.empty()) {
    const InstrId id = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(id)]) {
      continue;
    }
    live[static_cast<std::size_t>(id)] = true;
    for (const auto op : module.at(id).operands) {
      stack.push_back(op);
    }
  }
  HloModule out;
  std::vector<InstrId> id_map(module.size(), -1);
  int count = 0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    if (!live[i]) {
      ++count;
      continue;
    }
    out.instructions.push_back(remap(module.instructions[i], id_map));
    id_map[i] = static_cast<InstrId>(out.instructions.size() - 1);
  }
  remap_roots_and_params(module, out, id_map);
  if (removed != nullptr) *removed = count;
  return out;
}

HloModule optimize(HloModule module, PassStats* stats) {
  PassStats local;
  module = fold_constants(std::move(module), &local.folded);
  module = simplify_algebra(std::move(module), &local.simplified);
  module = rewrite_dots(std::move(module), &local.dot_rewrites);
  module = eliminate_common_subexpressions(std::move(module),
                                           &local.cse_removed);
  module = eliminate_dead_code(std::move(module), &local.dce_removed);
  if (stats != nullptr) *stats = local;
  return module;
}

std::vector<int> assign_fusion_groups(const HloModule& module) {
  std::vector<int> group(module.size(), -1);
  int current = 0;
  bool open = false;
  for (std::size_t i = 0; i < module.size(); ++i) {
    const auto op = module.instructions[i].opcode;
    if (op == Opcode::kParam || op == Opcode::kConstant) {
      group[i] = -1;
      continue;
    }
    if (is_heavy(op)) {
      // A heavy op joins the open group (input fusion of its elementwise
      // producers) and closes it.
      group[i] = current;
      ++current;
      open = false;
    } else {
      group[i] = current;
      open = true;
    }
  }
  (void)open;
  return group;
}

}  // namespace toast::xla
