#include "xla/executor.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "xla/eval.hpp"

namespace toast::xla {

namespace {

constexpr double kCompileBaseSeconds = 0.04;
constexpr double kCompilePerInstructionSeconds = 3.5e-4;

double literal_bytes(const HloInstruction& in) {
  return static_cast<double>(in.shape.num_elements()) *
         static_cast<double>(dtype_size(in.dtype));
}

}  // namespace

Compiled compile(HloModule module) {
  {
    const auto problems = verify(module);
    if (!problems.empty()) {
      throw std::logic_error("xla: invalid module: " + problems.front());
    }
  }
  Compiled c;
  c.module = optimize(std::move(module), &c.pass_stats);
  c.group_of = assign_fusion_groups(c.module);
  int max_group = -1;
  for (const auto g : c.group_of) {
    max_group = std::max(max_group, g);
  }
  c.n_groups = max_group + 1;
  c.compile_seconds =
      kCompileBaseSeconds +
      kCompilePerInstructionSeconds * static_cast<double>(c.module.size());
  return c;
}

namespace detail {

void validate_args(const HloModule& m, std::span<const Literal> args) {
  if (args.size() != m.params.size()) {
    throw std::invalid_argument("xla: argument count mismatch");
  }
  for (std::size_t p = 0; p < m.params.size(); ++p) {
    const auto& param = m.at(m.params[p]);
    if (args[p].shape() != param.shape || args[p].dtype() != param.dtype) {
      throw std::invalid_argument("xla: argument " + std::to_string(p) +
                                  " shape/dtype mismatch");
    }
  }
}

ExecutionReport build_report(const Compiled& compiled,
                             const ScatterIdxFn& scatter_idx) {
  const HloModule& m = compiled.module;

  ExecutionReport local;
  local.group_work.assign(static_cast<std::size_t>(compiled.n_groups), {});
  local.group_heavy.assign(static_cast<std::size_t>(compiled.n_groups),
                           false);
  for (auto& w : local.group_work) {
    w.launches = 0.0;  // set to 1 when the group turns out non-empty
  }

  // Consumer map: which groups read instruction i, and is it a root.
  const std::size_t n = m.size();
  std::vector<std::set<int>> consumer_groups(n);
  std::vector<std::set<int>> producer_groups(
      static_cast<std::size_t>(compiled.n_groups));
  for (std::size_t i = 0; i < n; ++i) {
    const int g = compiled.group_of[i];
    for (const auto op : m.instructions[i].operands) {
      const int og = compiled.group_of[static_cast<std::size_t>(op)];
      if (og != g) {
        consumer_groups[static_cast<std::size_t>(op)].insert(g);
        if (g >= 0 && og >= 0) {
          producer_groups[static_cast<std::size_t>(g)].insert(og);
        }
      }
    }
  }
  local.group_deps.resize(static_cast<std::size_t>(compiled.n_groups));
  for (std::size_t g = 0; g < producer_groups.size(); ++g) {
    local.group_deps[g].assign(producer_groups[g].begin(),
                               producer_groups[g].end());
  }
  std::unordered_set<InstrId> root_set(m.roots.begin(), m.roots.end());

  std::vector<int> group_instr_count(
      static_cast<std::size_t>(compiled.n_groups), 0);
  std::size_t temp_bytes = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const HloInstruction& in = m.instructions[i];
    const int g = compiled.group_of[i];

    if (in.opcode == Opcode::kParam) {
      continue;
    }
    temp_bytes += static_cast<std::size_t>(literal_bytes(in));
    local.peak_temp_bytes = std::max(local.peak_temp_bytes, temp_bytes);
    if (g < 0) {
      continue;
    }

    auto& work = local.group_work[static_cast<std::size_t>(g)];
    work.launches = 1.0;
    ++group_instr_count[static_cast<std::size_t>(g)];
    if (is_heavy(in.opcode)) {
      local.group_heavy[static_cast<std::size_t>(g)] = true;
    }
    const double elems = static_cast<double>(in.shape.num_elements());
    work.parallel_items = std::max(work.parallel_items, elems);

    // Flop accounting.
    switch (in.opcode) {
      case Opcode::kReduceSum:
        work.flops += static_cast<double>(
            m.at(in.operands[0]).shape.num_elements());
        break;
      case Opcode::kDot:
        work.flops += 2.0 * static_cast<double>(
                                m.at(in.operands[0]).shape.num_elements());
        work.parallel_items = std::max(
            work.parallel_items,
            static_cast<double>(m.at(in.operands[0]).shape.num_elements()));
        break;
      case Opcode::kScatterAdd:
      case Opcode::kScatterSet: {
        const double updates = static_cast<double>(
            m.at(in.operands[1]).shape.num_elements());
        work.flops += 2.0 * updates;
        work.parallel_items = std::max(work.parallel_items, updates);
        // Lowering decision from the data, scatter-add only: sorted valid
        // indices -> segmented reduction (no atomics); unsorted ->
        // atomics with the measured conflict rate.  scatter-set never
        // needs atomics (plain stores).
        const auto span = scatter_idx(static_cast<InstrId>(i));
        const std::int64_t scatter_base_n =
            m.at(in.operands[0]).shape.num_elements();
        bool sorted = true;
        double unique_targets = 0.0;
        std::int64_t prev = std::numeric_limits<std::int64_t>::min();
        for (const auto j : span) {
          if (j < 0 || j >= scatter_base_n) continue;  // dropped lanes
          if (j < prev) {
            sorted = false;
            break;
          }
          if (j != prev) unique_targets += 1.0;
          prev = j;
        }
        bool segment_reduce = false;
        if (in.opcode == Opcode::kScatterSet) {
          // Plain stores; covered by the write-traffic accounting below.
        } else if (sorted && span.size() > 1) {
          local.segment_lowering_used = true;
          segment_reduce = true;
        } else {
          // Conflict probability measured over warp-sized windows of the
          // actual update stream.
          constexpr std::size_t kWarp = 32;
          std::map<std::int64_t, int> hist;
          const std::int64_t base_n = scatter_base_n;
          double valid = 0.0;
          double conflicts = 0.0;
          for (std::size_t w0 = 0; w0 < span.size(); w0 += kWarp) {
            hist.clear();
            const std::size_t w1 = std::min(span.size(), w0 + kWarp);
            for (std::size_t k = w0; k < w1; ++k) {
              const auto j = span[k];
              if (j < 0 || j >= base_n) continue;
              valid += 1.0;
              if (++hist[j] > 1) conflicts += 1.0;
            }
          }
          const double prior_atomics = work.atomic_ops;
          const double rate = valid > 0.0 ? conflicts / valid : 0.0;
          work.atomic_conflict_rate =
              (work.atomic_conflict_rate * prior_atomics + rate * valid) /
              std::max(1.0, prior_atomics + valid);
          work.atomic_ops += valid;
        }
        // XLA buffer assignment updates the base in place (the operand is
        // dead after this op in our kernels): only the touched elements
        // are stored, not the whole buffer.  A segmented reduction stores
        // one value per *unique* target (the linear-algebra lowering of
        // the paper's offset_project anomaly); plain scatters store one
        // per update.
        work.bytes_written +=
            (segment_reduce ? unique_targets : updates) *
            static_cast<double>(dtype_size(in.dtype));
        break;
      }
      case Opcode::kGather:
        // A gather loads one table element per *output* element: padded
        // lanes really do read (dummy) data.
        work.flops += elems;
        work.bytes_read +=
            elems * static_cast<double>(dtype_size(in.dtype));
        break;
      default:
        work.flops += flops_per_element(in.opcode) * elems;
        break;
    }

    // Memory traffic: operands read from outside the group.  The gather
    // table is accounted above (per gathered element).
    for (std::size_t k = 0; k < in.operands.size(); ++k) {
      if (in.opcode == Opcode::kGather && k == 0) {
        continue;
      }
      const auto op = in.operands[k];
      const int og = compiled.group_of[static_cast<std::size_t>(op)];
      if (og != g) {
        work.bytes_read += literal_bytes(m.at(op));
      }
    }
    // Output traffic: values consumed by other groups or returned.
    if (!consumer_groups[i].empty() || root_set.count(static_cast<InstrId>(i))) {
      work.bytes_written += literal_bytes(in);
    }
  }

  // Register pressure: very large fused kernels (predicated branchy code
  // materializes every path, e.g. the HEALPix projection) spill registers
  // and lose occupancy.  Modelled as a compute-time multiplier that grows
  // once a fusion group exceeds what fits in the register file.
  constexpr double kRegisterComfortInstrs = 48.0;
  constexpr double kMaxRegisterPenalty = 3.0;
  for (std::size_t g = 0; g < local.group_work.size(); ++g) {
    const double pressure =
        static_cast<double>(group_instr_count[g]) / kRegisterComfortInstrs;
    if (pressure > 1.0) {
      local.group_work[g].divergence *=
          std::min(kMaxRegisterPenalty, pressure);
    }
  }

  for (const auto& w : local.group_work) {
    local.total += w;
  }
  return local;
}

}  // namespace detail

std::vector<Literal> execute(const Compiled& compiled,
                             std::span<const Literal> args,
                             ExecutionReport* report) {
  const HloModule& m = compiled.module;
  detail::validate_args(m, args);

  const std::size_t n = m.size();
  std::vector<Literal> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const HloInstruction& in = m.instructions[i];
    if (in.opcode == Opcode::kParam) {
      values[i] = args[static_cast<std::size_t>(in.i0)];
      continue;
    }
    if (in.opcode == Opcode::kConstant) {
      values[i] = *in.literal;
      continue;
    }
    std::vector<const Literal*> ops;
    ops.reserve(in.operands.size());
    for (const auto op : in.operands) {
      ops.push_back(&values[static_cast<std::size_t>(op)]);
    }
    values[i] = evaluate_instruction(in, ops);
  }

  if (report != nullptr) {
    *report = detail::build_report(
        compiled, [&values, &m](InstrId scatter) {
          const auto idx = m.at(scatter).operands[1];
          return values[static_cast<std::size_t>(idx)].i64();
        });
  }

  std::vector<Literal> outputs;
  outputs.reserve(m.roots.size());
  for (const auto r : m.roots) {
    outputs.push_back(values[static_cast<std::size_t>(r)]);
  }
  return outputs;
}

}  // namespace toast::xla
