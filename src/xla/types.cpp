#include "xla/types.hpp"

#include <sstream>

namespace toast::xla {

const char* to_string(DType d) {
  switch (d) {
    case DType::kF64:
      return "f64";
    case DType::kI64:
      return "i64";
    case DType::kPred:
      return "pred";
  }
  return "?";
}

std::size_t dtype_size(DType d) {
  switch (d) {
    case DType::kF64:
      return 8;
    case DType::kI64:
      return 8;
    case DType::kPred:
      return 1;
  }
  return 0;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ",";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Literal::Literal(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype) {
  const auto n = static_cast<std::size_t>(shape_.num_elements());
  switch (dtype_) {
    case DType::kF64:
      data_ = std::vector<double>(n, 0.0);
      break;
    case DType::kI64:
      data_ = std::vector<std::int64_t>(n, 0);
      break;
    case DType::kPred:
      data_ = std::vector<std::uint8_t>(n, 0);
      break;
  }
}

Literal Literal::scalar_f64(double v) {
  Literal l(Shape{}, DType::kF64);
  l.f64()[0] = v;
  return l;
}

Literal Literal::scalar_i64(std::int64_t v) {
  Literal l(Shape{}, DType::kI64);
  l.i64()[0] = v;
  return l;
}

Literal Literal::scalar_pred(bool v) {
  Literal l(Shape{}, DType::kPred);
  l.pred()[0] = v ? 1 : 0;
  return l;
}

Literal Literal::from_f64(Shape shape, std::span<const double> data) {
  Literal l(std::move(shape), DType::kF64);
  if (static_cast<std::int64_t>(data.size()) != l.num_elements()) {
    throw std::invalid_argument("Literal::from_f64: size mismatch");
  }
  std::copy(data.begin(), data.end(), l.f64().begin());
  return l;
}

Literal Literal::from_i64(Shape shape, std::span<const std::int64_t> data) {
  Literal l(std::move(shape), DType::kI64);
  if (static_cast<std::int64_t>(data.size()) != l.num_elements()) {
    throw std::invalid_argument("Literal::from_i64: size mismatch");
  }
  std::copy(data.begin(), data.end(), l.i64().begin());
  return l;
}

std::span<double> Literal::f64() {
  return std::get<std::vector<double>>(data_);
}
std::span<const double> Literal::f64() const {
  return std::get<std::vector<double>>(data_);
}
std::span<std::int64_t> Literal::i64() {
  return std::get<std::vector<std::int64_t>>(data_);
}
std::span<const std::int64_t> Literal::i64() const {
  return std::get<std::vector<std::int64_t>>(data_);
}
std::span<std::uint8_t> Literal::pred() {
  return std::get<std::vector<std::uint8_t>>(data_);
}
std::span<const std::uint8_t> Literal::pred() const {
  return std::get<std::vector<std::uint8_t>>(data_);
}

double Literal::as_double(std::int64_t i) const {
  const auto idx = static_cast<std::size_t>(i);
  switch (dtype_) {
    case DType::kF64:
      return f64()[idx];
    case DType::kI64:
      return static_cast<double>(i64()[idx]);
    case DType::kPred:
      return static_cast<double>(pred()[idx]);
  }
  return 0.0;
}

}  // namespace toast::xla
