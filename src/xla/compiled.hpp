#pragma once

// Fused-loop executable: the compiled counterpart of the interpreting
// executor (xla/eval.cpp).  Lowering turns each fusion group of a
// Compiled module into one specialized loop body — elementwise and
// structural operands are folded into the loop through composed index
// transforms, so a group executes as a single blocked pass with no
// per-op dispatch and no full-size intermediate Literals.  Only group
// boundaries (params, constants, roots, cross-group values, scatter
// bases/indices, gather tables) are materialized.
//
// The interpreter is the oracle: for every module the fused executable
// can lower, run() produces bitwise-identical products, and
// execute_compiled() produces a bitwise-identical ExecutionReport.
// Modules the lowering rejects (e.g. dtype-mixed arithmetic the
// interpreter would also choke on) raise LoweringError and the Jit
// falls back to interpretation for that call.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "xla/executor.hpp"
#include "xla/hlo.hpp"

namespace toast::xla {

/// The module cannot be lowered to fused loops.  Public so callers (the
/// Jit, tests) can distinguish "fall back to the interpreter" from real
/// evaluation errors.
class LoweringError : public std::logic_error {
 public:
  explicit LoweringError(const std::string& what)
      : std::logic_error("xla/compiled: " + what) {}
};

namespace fused {

/// Index-transform step: maps a loop-domain index to an operand index.
/// Chains compose root-to-leaf as structural ops (broadcast / slice /
/// reshape) are folded into the loop body.
enum class XKind : std::uint8_t {
  kZero,    // scalar-broadcast operand: always element 0
  kDiv,     // BroadcastCol: row index = i / cols
  kMod,     // BroadcastRow: column index = i % cols
  kMulAdd,  // SliceCol: flat index = i * cols + i0
};

struct XOp {
  XKind kind;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

using Xform = std::vector<XOp>;

inline std::int64_t apply_xform(const Xform& x, std::int64_t i) {
  for (const auto& s : x) {
    switch (s.kind) {
      case XKind::kZero:
        i = 0;
        break;
      case XKind::kDiv:
        i /= s.a;
        break;
      case XKind::kMod:
        i %= s.a;
        break;
      case XKind::kMulAdd:
        i = i * s.a + s.b;
        break;
    }
  }
  return i;
}

struct Step;
struct ExecState;

/// One blockwise bytecode step.  `fn` is instantiated from a template
/// over (op kind, dtypes) at lowering time, so execution threads
/// directly through specialized loop bodies.
using StepFn = void (*)(const Step&, ExecState&, std::int64_t base,
                        std::int64_t n);

struct Step {
  StepFn fn = nullptr;
  int out = -1;   // destination register in the dtype's pool
  int in0 = -1;   // source registers
  int in1 = -1;
  int in2 = -1;
  int slot = -1;  // materialized value (loads, gather tables)
  Xform xform;    // index mapping for loads / iota
};

enum class LoopKind : std::uint8_t {
  kMap,            // elementwise / structural / gather root
  kReduceSumFull,  // ReduceSum axis=-1
  kReduceSumRows,  // ReduceSum axis=1 on rank 2
  kReduceMax,
  kDot,
  kScatter,  // ScatterAdd / ScatterSet
};

struct Loop {
  LoopKind kind = LoopKind::kMap;
  InstrId root = -1;
  std::vector<Step> steps;
  std::int64_t domain = 0;  // elements iterated (output or input domain)
  std::int64_t rows = 0;
  std::int64_t cols = 0;      // kReduceSumRows
  int value_reg = -1;         // register holding the root expression block
  int value_reg2 = -1;        // second dot operand
  DType dtype = DType::kF64;  // result element type
  int base_slot = -1;         // scatter base (materialized)
  int idx_slot = -1;          // scatter indices (materialized)
  bool scatter_set = false;
  int n_f64 = 0;  // register pool sizes this loop needs
  int n_i64 = 0;
  int n_pred = 0;
};

}  // namespace fused

/// A lowered module: one fused::Loop per materialized non-leaf value,
/// executed in SSA order.  Immutable after lower(); safe to share across
/// calls (cached on Compiled::fused).
class FusedExecutable {
 public:
  /// Lower a compiled module.  Throws LoweringError when fused loops
  /// cannot reproduce the interpreter bit for bit.
  static std::shared_ptr<const FusedExecutable> lower(const Compiled& c);

  struct RunResult {
    /// Storage for values computed by the loops, indexed by InstrId.
    std::vector<Literal> owned;
    /// Per-instruction view: params point at args, constants at the
    /// module payload, computed values at `owned`.  Non-materialized
    /// instructions stay nullptr — they only ever existed inside a loop.
    std::vector<const Literal*> vals;
  };

  /// Execute the loops.  `args` must already be validated against the
  /// module signature.
  RunResult run(const HloModule& m, std::span<const Literal> args) const;

  std::size_t loop_count() const { return loops_.size(); }
  std::size_t step_count() const;
  std::size_t materialized_count() const { return n_materialized_; }

 private:
  FusedExecutable() = default;

  std::vector<fused::Loop> loops_;
  std::size_t n_materialized_ = 0;
  int max_f64_ = 0;  // register pool high-water marks across loops
  int max_i64_ = 0;
  int max_pred_ = 0;
};

}  // namespace toast::xla
