#include "xla/hlo.hpp"

#include <sstream>

namespace toast::xla {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kParam: return "param";
    case Opcode::kConstant: return "constant";
    case Opcode::kIota: return "iota";
    case Opcode::kNeg: return "neg";
    case Opcode::kAbs: return "abs";
    case Opcode::kSign: return "sign";
    case Opcode::kTanh: return "tanh";
    case Opcode::kSqrt: return "sqrt";
    case Opcode::kSin: return "sin";
    case Opcode::kCos: return "cos";
    case Opcode::kExp: return "exp";
    case Opcode::kLog: return "log";
    case Opcode::kFloor: return "floor";
    case Opcode::kNot: return "not";
    case Opcode::kCastF64: return "convert.f64";
    case Opcode::kCastI64: return "convert.i64";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kAtan2: return "atan2";
    case Opcode::kMod: return "mod";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kLt: return "lt";
    case Opcode::kLe: return "le";
    case Opcode::kGt: return "gt";
    case Opcode::kGe: return "ge";
    case Opcode::kEq: return "eq";
    case Opcode::kNe: return "ne";
    case Opcode::kSelect: return "select";
    case Opcode::kClamp: return "clamp";
    case Opcode::kReshape: return "reshape";
    case Opcode::kBroadcastCol: return "broadcast_col";
    case Opcode::kBroadcastRow: return "broadcast_row";
    case Opcode::kSliceCol: return "slice_col";
    case Opcode::kGather: return "gather";
    case Opcode::kScatterAdd: return "scatter_add";
    case Opcode::kScatterSet: return "scatter_set";
    case Opcode::kReduceSum: return "reduce_sum";
    case Opcode::kReduceMax: return "reduce_max";
    case Opcode::kDot: return "dot";
  }
  return "?";
}

bool is_elementwise(Opcode op) {
  switch (op) {
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kSign:
    case Opcode::kSqrt:
    case Opcode::kTanh:
    case Opcode::kSin:
    case Opcode::kCos:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kFloor:
    case Opcode::kNot:
    case Opcode::kCastF64:
    case Opcode::kCastI64:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAtan2:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kSelect:
    case Opcode::kClamp:
      return true;
    default:
      return false;
  }
}

bool is_heavy(Opcode op) {
  // Gathers are NOT fusion boundaries: XLA input-fuses gathers into their
  // consumers, which matters for the segment-scatter kernels.
  switch (op) {
    case Opcode::kScatterAdd:
    case Opcode::kScatterSet:
    case Opcode::kReduceSum:
    case Opcode::kReduceMax:
    case Opcode::kDot:
      return true;
    default:
      return false;
  }
}

double flops_per_element(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kFloor:
    case Opcode::kSign:
    case Opcode::kSelect:
    case Opcode::kLt:
    case Opcode::kLe:
    case Opcode::kGt:
    case Opcode::kGe:
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kNot:
    case Opcode::kCastF64:
    case Opcode::kCastI64:
      return 1.0;
    case Opcode::kClamp:
      return 2.0;
    case Opcode::kDiv:
    case Opcode::kMod:
      return 4.0;
    case Opcode::kSqrt:
      return 4.0;
    case Opcode::kSin:
    case Opcode::kCos:
    case Opcode::kExp:
    case Opcode::kLog:
    case Opcode::kTanh:
      return 15.0;
    case Opcode::kAtan2:
      return 25.0;
    case Opcode::kGather:
      return 1.0;
    case Opcode::kScatterAdd:
      return 2.0;
    case Opcode::kScatterSet:
      return 1.0;
    case Opcode::kReduceSum:
    case Opcode::kReduceMax:
    case Opcode::kDot:
      return 1.0;
    default:
      return 0.0;  // param/constant/iota/structural
  }
}

std::string HloModule::to_string() const {
  std::ostringstream out;
  out << "HloModule " << name << " {\n";
  for (std::size_t i = 0; i < instructions.size(); ++i) {
    const auto& in = instructions[i];
    out << "  %" << i << " = " << xla::to_string(in.opcode)
        << in.shape.to_string() << ":" << xla::to_string(in.dtype) << "(";
    for (std::size_t k = 0; k < in.operands.size(); ++k) {
      if (k > 0) out << ", ";
      out << "%" << in.operands[k];
    }
    out << ")";
    if (in.opcode == Opcode::kParam || in.opcode == Opcode::kIota ||
        in.opcode == Opcode::kBroadcastCol ||
        in.opcode == Opcode::kBroadcastRow ||
        in.opcode == Opcode::kSliceCol || in.opcode == Opcode::kReduceSum) {
      out << " i0=" << in.i0;
    }
    out << "\n";
  }
  out << "  roots:";
  for (const auto r : roots) out << " %" << r;
  out << "\n}\n";
  return out.str();
}

}  // namespace toast::xla
