#include "xla/eval.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace toast::xla {

namespace {

// Scalar-broadcast accessors: a size-1 operand supplies its single value
// for every output element.
double getf(const Literal& l, std::int64_t i) {
  return l.num_elements() == 1 ? l.f64()[0]
                               : l.f64()[static_cast<std::size_t>(i)];
}
std::int64_t geti(const Literal& l, std::int64_t i) {
  return l.num_elements() == 1 ? l.i64()[0]
                               : l.i64()[static_cast<std::size_t>(i)];
}
std::uint8_t getp(const Literal& l, std::int64_t i) {
  return l.num_elements() == 1 ? l.pred()[0]
                               : l.pred()[static_cast<std::size_t>(i)];
}
double getd(const Literal& l, std::int64_t i) {
  return l.num_elements() == 1 ? l.as_double(0) : l.as_double(i);
}

Literal eval_unary(const HloInstruction& in, const Literal& a) {
  Literal out(in.shape, in.dtype);
  const std::int64_t n = out.num_elements();
  switch (in.opcode) {
    case Opcode::kNeg:
      if (in.dtype == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = -getf(a, i);
      } else {
        for (std::int64_t i = 0; i < n; ++i) out.i64()[i] = -geti(a, i);
      }
      break;
    case Opcode::kAbs:
      if (in.dtype == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i)
          out.f64()[i] = std::abs(getf(a, i));
      } else {
        for (std::int64_t i = 0; i < n; ++i)
          out.i64()[i] = std::abs(geti(a, i));
      }
      break;
    case Opcode::kSqrt:
      for (std::int64_t i = 0; i < n; ++i)
        out.f64()[i] = std::sqrt(getf(a, i));
      break;
    case Opcode::kSin:
      for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = std::sin(getf(a, i));
      break;
    case Opcode::kCos:
      for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = std::cos(getf(a, i));
      break;
    case Opcode::kExp:
      for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = std::exp(getf(a, i));
      break;
    case Opcode::kLog:
      for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = std::log(getf(a, i));
      break;
    case Opcode::kFloor:
      for (std::int64_t i = 0; i < n; ++i)
        out.f64()[i] = std::floor(getf(a, i));
      break;
    case Opcode::kTanh:
      for (std::int64_t i = 0; i < n; ++i)
        out.f64()[i] = std::tanh(getf(a, i));
      break;
    case Opcode::kSign:
      if (in.dtype == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i) {
          const double v = getf(a, i);
          out.f64()[i] = (v > 0.0) - (v < 0.0);
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t v = geti(a, i);
          out.i64()[i] = (v > 0) - (v < 0);
        }
      }
      break;
    case Opcode::kNot:
      for (std::int64_t i = 0; i < n; ++i)
        out.pred()[i] = getp(a, i) ? 0 : 1;
      break;
    case Opcode::kCastF64:
      for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = getd(a, i);
      break;
    case Opcode::kCastI64:
      if (a.dtype() == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i)
          out.i64()[i] = static_cast<std::int64_t>(getf(a, i));
      } else if (a.dtype() == DType::kPred) {
        for (std::int64_t i = 0; i < n; ++i)
          out.i64()[i] = static_cast<std::int64_t>(getp(a, i));
      } else {
        for (std::int64_t i = 0; i < n; ++i) out.i64()[i] = geti(a, i);
      }
      break;
    default:
      throw std::logic_error("eval: unexpected unary opcode");
  }
  return out;
}

Literal eval_binary(const HloInstruction& in, const Literal& a,
                    const Literal& b) {
  Literal out(in.shape, in.dtype);
  const std::int64_t n = out.num_elements();

  auto for_f64 = [&](auto fn) {
    for (std::int64_t i = 0; i < n; ++i) out.f64()[i] = fn(getf(a, i), getf(b, i));
  };
  auto for_i64 = [&](auto fn) {
    for (std::int64_t i = 0; i < n; ++i) out.i64()[i] = fn(geti(a, i), geti(b, i));
  };
  auto for_cmp = [&](auto fn) {
    if (a.dtype() == DType::kI64) {
      for (std::int64_t i = 0; i < n; ++i)
        out.pred()[i] = fn(geti(a, i), geti(b, i)) ? 1 : 0;
    } else {
      for (std::int64_t i = 0; i < n; ++i)
        out.pred()[i] = fn(getf(a, i), getf(b, i)) ? 1 : 0;
    }
  };

  switch (in.opcode) {
    case Opcode::kAdd:
      if (in.dtype == DType::kF64) for_f64(std::plus<double>());
      else for_i64(std::plus<std::int64_t>());
      break;
    case Opcode::kSub:
      if (in.dtype == DType::kF64) for_f64(std::minus<double>());
      else for_i64(std::minus<std::int64_t>());
      break;
    case Opcode::kMul:
      if (in.dtype == DType::kF64) for_f64(std::multiplies<double>());
      else for_i64(std::multiplies<std::int64_t>());
      break;
    case Opcode::kDiv:
      if (in.dtype == DType::kF64) for_f64(std::divides<double>());
      else for_i64([](std::int64_t x, std::int64_t y) { return x / y; });
      break;
    case Opcode::kMin:
      if (in.dtype == DType::kF64)
        for_f64([](double x, double y) { return std::min(x, y); });
      else
        for_i64([](std::int64_t x, std::int64_t y) { return std::min(x, y); });
      break;
    case Opcode::kMax:
      if (in.dtype == DType::kF64)
        for_f64([](double x, double y) { return std::max(x, y); });
      else
        for_i64([](std::int64_t x, std::int64_t y) { return std::max(x, y); });
      break;
    case Opcode::kAtan2:
      for_f64([](double y, double x) { return std::atan2(y, x); });
      break;
    case Opcode::kMod:
      if (in.dtype == DType::kF64)
        for_f64([](double x, double y) { return std::fmod(x, y); });
      else
        for_i64([](std::int64_t x, std::int64_t y) { return x % y; });
      break;
    case Opcode::kAnd:
      if (in.dtype == DType::kPred) {
        for (std::int64_t i = 0; i < n; ++i)
          out.pred()[i] = (getp(a, i) && getp(b, i)) ? 1 : 0;
      } else {
        for_i64([](std::int64_t x, std::int64_t y) { return x & y; });
      }
      break;
    case Opcode::kOr:
      if (in.dtype == DType::kPred) {
        for (std::int64_t i = 0; i < n; ++i)
          out.pred()[i] = (getp(a, i) || getp(b, i)) ? 1 : 0;
      } else {
        for_i64([](std::int64_t x, std::int64_t y) { return x | y; });
      }
      break;
    case Opcode::kXor:
      if (in.dtype == DType::kPred) {
        for (std::int64_t i = 0; i < n; ++i)
          out.pred()[i] = (getp(a, i) != getp(b, i)) ? 1 : 0;
      } else {
        for_i64([](std::int64_t x, std::int64_t y) { return x ^ y; });
      }
      break;
    case Opcode::kShl:
      for_i64([](std::int64_t x, std::int64_t y) {
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) << y);
      });
      break;
    case Opcode::kShr:
      for_i64([](std::int64_t x, std::int64_t y) {
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) >> y);
      });
      break;
    case Opcode::kLt:
      for_cmp([](auto x, auto y) { return x < y; });
      break;
    case Opcode::kLe:
      for_cmp([](auto x, auto y) { return x <= y; });
      break;
    case Opcode::kGt:
      for_cmp([](auto x, auto y) { return x > y; });
      break;
    case Opcode::kGe:
      for_cmp([](auto x, auto y) { return x >= y; });
      break;
    case Opcode::kEq:
      for_cmp([](auto x, auto y) { return x == y; });
      break;
    case Opcode::kNe:
      for_cmp([](auto x, auto y) { return x != y; });
      break;
    default:
      throw std::logic_error("eval: unexpected binary opcode");
  }
  return out;
}

}  // namespace

Literal evaluate_instruction(const HloInstruction& in,
                             const std::vector<const Literal*>& ops) {
  switch (in.opcode) {
    case Opcode::kParam:
      throw std::logic_error("eval: params are substituted by the executor");
    case Opcode::kConstant:
      return *in.literal;
    case Opcode::kIota: {
      Literal out(in.shape, DType::kI64);
      for (std::int64_t i = 0; i < in.i0; ++i) out.i64()[i] = i;
      return out;
    }
    case Opcode::kSelect: {
      const Literal& p = *ops[0];
      const Literal& t = *ops[1];
      const Literal& f = *ops[2];
      Literal out(in.shape, in.dtype);
      const std::int64_t n = out.num_elements();
      if (in.dtype == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i)
          out.f64()[i] = getp(p, i) ? getf(t, i) : getf(f, i);
      } else if (in.dtype == DType::kI64) {
        for (std::int64_t i = 0; i < n; ++i)
          out.i64()[i] = getp(p, i) ? geti(t, i) : geti(f, i);
      } else {
        for (std::int64_t i = 0; i < n; ++i)
          out.pred()[i] = getp(p, i) ? getp(t, i) : getp(f, i);
      }
      return out;
    }
    case Opcode::kClamp: {
      const Literal& v = *ops[0];
      const Literal& lo = *ops[1];
      const Literal& hi = *ops[2];
      Literal out(in.shape, in.dtype);
      const std::int64_t n = out.num_elements();
      if (in.dtype == DType::kF64) {
        for (std::int64_t i = 0; i < n; ++i)
          out.f64()[i] = std::clamp(getf(v, i), getf(lo, i), getf(hi, i));
      } else {
        for (std::int64_t i = 0; i < n; ++i)
          out.i64()[i] = std::clamp(geti(v, i), geti(lo, i), geti(hi, i));
      }
      return out;
    }
    case Opcode::kReshape: {
      Literal out(in.shape, in.dtype);
      if (in.dtype == DType::kF64) {
        std::copy(ops[0]->f64().begin(), ops[0]->f64().end(),
                  out.f64().begin());
      } else if (in.dtype == DType::kI64) {
        std::copy(ops[0]->i64().begin(), ops[0]->i64().end(),
                  out.i64().begin());
      } else {
        std::copy(ops[0]->pred().begin(), ops[0]->pred().end(),
                  out.pred().begin());
      }
      return out;
    }
    case Opcode::kBroadcastCol: {
      const Literal& a = *ops[0];
      const std::int64_t rows = in.shape.dim(0);
      const std::int64_t cols = in.shape.dim(1);
      Literal out(in.shape, in.dtype);
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < cols; ++c) {
          const std::int64_t o = r * cols + c;
          if (in.dtype == DType::kF64) out.f64()[o] = a.f64()[r];
          else if (in.dtype == DType::kI64) out.i64()[o] = a.i64()[r];
          else out.pred()[o] = a.pred()[r];
        }
      }
      return out;
    }
    case Opcode::kBroadcastRow: {
      const Literal& a = *ops[0];
      const std::int64_t rows = in.shape.dim(0);
      const std::int64_t cols = in.shape.dim(1);
      Literal out(in.shape, in.dtype);
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < cols; ++c) {
          const std::int64_t o = r * cols + c;
          if (in.dtype == DType::kF64) out.f64()[o] = a.f64()[c];
          else if (in.dtype == DType::kI64) out.i64()[o] = a.i64()[c];
          else out.pred()[o] = a.pred()[c];
        }
      }
      return out;
    }
    case Opcode::kSliceCol: {
      const Literal& a = *ops[0];
      const std::int64_t rows = in.shape.dim(0);
      const std::int64_t cols = a.shape().dim(1);
      Literal out(in.shape, in.dtype);
      for (std::int64_t r = 0; r < rows; ++r) {
        const std::int64_t o = r * cols + in.i0;
        if (in.dtype == DType::kF64) out.f64()[r] = a.f64()[o];
        else if (in.dtype == DType::kI64) out.i64()[r] = a.i64()[o];
        else out.pred()[r] = a.pred()[o];
      }
      return out;
    }
    case Opcode::kGather: {
      const Literal& table = *ops[0];
      const Literal& idx = *ops[1];
      Literal out(in.shape, in.dtype);
      const std::int64_t n = out.num_elements();
      const std::int64_t t = table.num_elements();
      for (std::int64_t i = 0; i < n; ++i) {
        // JAX clamps out-of-range gather indices.
        const std::int64_t j =
            std::clamp<std::int64_t>(idx.i64()[i], 0, t - 1);
        if (in.dtype == DType::kF64) out.f64()[i] = table.f64()[j];
        else if (in.dtype == DType::kI64) out.i64()[i] = table.i64()[j];
        else out.pred()[i] = table.pred()[j];
      }
      return out;
    }
    case Opcode::kScatterAdd:
    case Opcode::kScatterSet: {
      Literal out = *ops[0];
      const Literal& idx = *ops[1];
      const Literal& upd = *ops[2];
      const std::int64_t n = idx.num_elements();
      const std::int64_t t = out.num_elements();
      const bool set = in.opcode == Opcode::kScatterSet;
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t j = idx.i64()[i];
        if (j < 0 || j >= t) continue;  // JAX drops out-of-range scatters
        if (in.dtype == DType::kF64) {
          if (set) out.f64()[j] = upd.f64()[i];
          else out.f64()[j] += upd.f64()[i];
        } else {
          if (set) out.i64()[j] = upd.i64()[i];
          else out.i64()[j] += upd.i64()[i];
        }
      }
      return out;
    }
    case Opcode::kReduceSum: {
      const Literal& a = *ops[0];
      if (in.i0 == -1) {
        Literal out(Shape{}, in.dtype);
        if (in.dtype == DType::kF64) {
          double s = 0.0;
          for (const double v : a.f64()) s += v;
          out.f64()[0] = s;
        } else {
          std::int64_t s = 0;
          for (const auto v : a.i64()) s += v;
          out.i64()[0] = s;
        }
        return out;
      }
      // axis = 1 on rank 2.
      const std::int64_t rows = a.shape().dim(0);
      const std::int64_t cols = a.shape().dim(1);
      Literal out(in.shape, in.dtype);
      for (std::int64_t r = 0; r < rows; ++r) {
        if (in.dtype == DType::kF64) {
          double s = 0.0;
          for (std::int64_t c = 0; c < cols; ++c) s += a.f64()[r * cols + c];
          out.f64()[r] = s;
        } else {
          std::int64_t s = 0;
          for (std::int64_t c = 0; c < cols; ++c) s += a.i64()[r * cols + c];
          out.i64()[r] = s;
        }
      }
      return out;
    }
    case Opcode::kReduceMax: {
      const Literal& a = *ops[0];
      Literal out(Shape{}, in.dtype);
      if (in.dtype == DType::kF64) {
        double m = -std::numeric_limits<double>::infinity();
        for (const double v : a.f64()) m = std::max(m, v);
        out.f64()[0] = m;
      } else {
        std::int64_t m = std::numeric_limits<std::int64_t>::min();
        for (const auto v : a.i64()) m = std::max(m, v);
        out.i64()[0] = m;
      }
      return out;
    }
    case Opcode::kDot: {
      const Literal& a = *ops[0];
      const Literal& b = *ops[1];
      Literal out(Shape{}, DType::kF64);
      double s = 0.0;
      const std::int64_t n = a.num_elements();
      for (std::int64_t i = 0; i < n; ++i) s += a.f64()[i] * b.f64()[i];
      out.f64()[0] = s;
      return out;
    }
    default:
      break;
  }
  if (in.operands.size() == 1) {
    return eval_unary(in, *ops[0]);
  }
  if (in.operands.size() == 2) {
    return eval_binary(in, *ops[0], *ops[1]);
  }
  throw std::logic_error("eval: unhandled instruction");
}

}  // namespace toast::xla
