#include "xla/array.hpp"

#include <stdexcept>

namespace toast::xla {

namespace {

thread_local TraceContext* g_current = nullptr;

TraceContext& ctx_or_throw() {
  if (g_current == nullptr) {
    throw std::logic_error(
        "xla: array operations require an active trace (call through jit)");
  }
  return *g_current;
}

void check_same_ctx(const Array& a, const Array& b) {
  if (a.ctx() != b.ctx()) {
    throw std::logic_error("xla: arrays from different traces");
  }
}

bool is_scalar(const Shape& s) { return s.num_elements() == 1 && s.rank() == 0; }

/// Result shape for elementwise ops with scalar broadcasting.
Shape broadcast_shape(const Shape& a, const Shape& b) {
  if (a == b) return a;
  if (is_scalar(a)) return b;
  if (is_scalar(b)) return a;
  throw std::invalid_argument("xla: shape mismatch " + a.to_string() + " vs " +
                              b.to_string() +
                              " (use broadcast_col/broadcast_row)");
}

Array emit_unary(Opcode op, Array a, DType out_dtype) {
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = op;
  in.dtype = out_dtype;
  in.shape = a.shape();
  in.operands = {a.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array emit_binary(Opcode op, Array a, Array b, DType out_dtype) {
  check_same_ctx(a, b);
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = op;
  in.dtype = out_dtype;
  in.shape = broadcast_shape(a.shape(), b.shape());
  in.operands = {a.id(), b.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

void require_dtype(const Array& a, DType d, const char* what) {
  if (a.dtype() != d) {
    throw std::invalid_argument(std::string("xla: ") + what +
                                " requires dtype " + to_string(d) + ", got " +
                                to_string(a.dtype()));
  }
}

}  // namespace

TraceContext::TraceContext(std::string name) {
  module_.name = std::move(name);
  previous_ = g_current;
  g_current = this;
}

TraceContext::~TraceContext() { g_current = previous_; }

TraceContext* TraceContext::current() { return g_current; }

InstrId TraceContext::emit(HloInstruction instr) {
  module_.instructions.push_back(std::move(instr));
  return static_cast<InstrId>(module_.instructions.size() - 1);
}

HloModule TraceContext::finish(const std::vector<InstrId>& roots) {
  module_.roots = roots;
  return std::move(module_);
}

const Shape& Array::shape() const { return ctx_->at(id_).shape; }
DType Array::dtype() const { return ctx_->at(id_).dtype; }

Array constant(double v) { return constant_array(Literal::scalar_f64(v)); }
Array constant_i64(std::int64_t v) {
  return constant_array(Literal::scalar_i64(v));
}

Array constant_array(const Literal& value) {
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kConstant;
  in.dtype = value.dtype();
  in.shape = value.shape();
  in.literal = value;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array iota(std::int64_t n) {
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kIota;
  in.dtype = DType::kI64;
  in.shape = Shape{n};
  in.i0 = n;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array add(Array a, Array b) { return emit_binary(Opcode::kAdd, a, b, a.dtype()); }
Array sub(Array a, Array b) { return emit_binary(Opcode::kSub, a, b, a.dtype()); }
Array mul(Array a, Array b) { return emit_binary(Opcode::kMul, a, b, a.dtype()); }
Array div(Array a, Array b) { return emit_binary(Opcode::kDiv, a, b, a.dtype()); }
Array minimum(Array a, Array b) {
  return emit_binary(Opcode::kMin, a, b, a.dtype());
}
Array maximum(Array a, Array b) {
  return emit_binary(Opcode::kMax, a, b, a.dtype());
}
Array atan2(Array y, Array x) {
  require_dtype(y, DType::kF64, "atan2");
  return emit_binary(Opcode::kAtan2, y, x, DType::kF64);
}
Array mod(Array a, Array b) { return emit_binary(Opcode::kMod, a, b, a.dtype()); }
Array neg(Array a) { return emit_unary(Opcode::kNeg, a, a.dtype()); }
Array abs(Array a) { return emit_unary(Opcode::kAbs, a, a.dtype()); }
Array sign(Array a) { return emit_unary(Opcode::kSign, a, a.dtype()); }
Array tanh(Array a) {
  require_dtype(a, DType::kF64, "tanh");
  return emit_unary(Opcode::kTanh, a, DType::kF64);
}
Array sqrt(Array a) {
  require_dtype(a, DType::kF64, "sqrt");
  return emit_unary(Opcode::kSqrt, a, DType::kF64);
}
Array sin(Array a) {
  require_dtype(a, DType::kF64, "sin");
  return emit_unary(Opcode::kSin, a, DType::kF64);
}
Array cos(Array a) {
  require_dtype(a, DType::kF64, "cos");
  return emit_unary(Opcode::kCos, a, DType::kF64);
}
Array exp(Array a) {
  require_dtype(a, DType::kF64, "exp");
  return emit_unary(Opcode::kExp, a, DType::kF64);
}
Array log(Array a) {
  require_dtype(a, DType::kF64, "log");
  return emit_unary(Opcode::kLog, a, DType::kF64);
}
Array floor(Array a) {
  require_dtype(a, DType::kF64, "floor");
  return emit_unary(Opcode::kFloor, a, DType::kF64);
}

Array select(Array pred, Array on_true, Array on_false) {
  require_dtype(pred, DType::kPred, "select");
  check_same_ctx(pred, on_true);
  check_same_ctx(pred, on_false);
  if (on_true.dtype() != on_false.dtype()) {
    throw std::invalid_argument("xla: select branch dtype mismatch");
  }
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kSelect;
  in.dtype = on_true.dtype();
  in.shape = broadcast_shape(broadcast_shape(pred.shape(), on_true.shape()),
                             on_false.shape());
  in.operands = {pred.id(), on_true.id(), on_false.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array clamp(Array v, Array lo, Array hi) {
  check_same_ctx(v, lo);
  check_same_ctx(v, hi);
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kClamp;
  in.dtype = v.dtype();
  in.shape = v.shape();
  in.operands = {v.id(), lo.id(), hi.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array lt(Array a, Array b) { return emit_binary(Opcode::kLt, a, b, DType::kPred); }
Array le(Array a, Array b) { return emit_binary(Opcode::kLe, a, b, DType::kPred); }
Array gt(Array a, Array b) { return emit_binary(Opcode::kGt, a, b, DType::kPred); }
Array ge(Array a, Array b) { return emit_binary(Opcode::kGe, a, b, DType::kPred); }
Array eq(Array a, Array b) { return emit_binary(Opcode::kEq, a, b, DType::kPred); }
Array ne(Array a, Array b) { return emit_binary(Opcode::kNe, a, b, DType::kPred); }

Array logical_and(Array a, Array b) {
  require_dtype(a, DType::kPred, "logical_and");
  return emit_binary(Opcode::kAnd, a, b, DType::kPred);
}
Array logical_or(Array a, Array b) {
  require_dtype(a, DType::kPred, "logical_or");
  return emit_binary(Opcode::kOr, a, b, DType::kPred);
}
Array logical_not(Array a) {
  require_dtype(a, DType::kPred, "logical_not");
  return emit_unary(Opcode::kNot, a, DType::kPred);
}
Array bitwise_and(Array a, Array b) {
  require_dtype(a, DType::kI64, "bitwise_and");
  return emit_binary(Opcode::kAnd, a, b, DType::kI64);
}
Array bitwise_or(Array a, Array b) {
  require_dtype(a, DType::kI64, "bitwise_or");
  return emit_binary(Opcode::kOr, a, b, DType::kI64);
}
Array bitwise_xor(Array a, Array b) {
  require_dtype(a, DType::kI64, "bitwise_xor");
  return emit_binary(Opcode::kXor, a, b, DType::kI64);
}
Array shift_left(Array a, Array bits) {
  require_dtype(a, DType::kI64, "shift_left");
  return emit_binary(Opcode::kShl, a, bits, DType::kI64);
}
Array shift_right(Array a, Array bits) {
  require_dtype(a, DType::kI64, "shift_right");
  return emit_binary(Opcode::kShr, a, bits, DType::kI64);
}
Array to_f64(Array a) { return emit_unary(Opcode::kCastF64, a, DType::kF64); }
Array to_i64(Array a) { return emit_unary(Opcode::kCastI64, a, DType::kI64); }

Array reshape(Array a, Shape shape) {
  if (shape.num_elements() != a.shape().num_elements()) {
    throw std::invalid_argument("xla: reshape changes element count");
  }
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kReshape;
  in.dtype = a.dtype();
  in.shape = std::move(shape);
  in.operands = {a.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array broadcast_col(Array a, std::int64_t m) {
  if (a.shape().rank() != 1) {
    throw std::invalid_argument("xla: broadcast_col expects rank-1 input");
  }
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kBroadcastCol;
  in.dtype = a.dtype();
  in.shape = Shape{a.shape().dim(0), m};
  in.operands = {a.id()};
  in.i0 = m;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array broadcast_row(Array a, std::int64_t n) {
  if (a.shape().rank() != 1) {
    throw std::invalid_argument("xla: broadcast_row expects rank-1 input");
  }
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kBroadcastRow;
  in.dtype = a.dtype();
  in.shape = Shape{n, a.shape().dim(0)};
  in.operands = {a.id()};
  in.i0 = n;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array slice_col(Array a, std::int64_t col) {
  if (a.shape().rank() != 2 || col < 0 || col >= a.shape().dim(1)) {
    throw std::invalid_argument("xla: slice_col out of range");
  }
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kSliceCol;
  in.dtype = a.dtype();
  in.shape = Shape{a.shape().dim(0)};
  in.operands = {a.id()};
  in.i0 = col;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array gather(Array table, Array indices) {
  if (table.shape().rank() != 1) {
    throw std::invalid_argument("xla: gather table must be rank 1");
  }
  require_dtype(indices, DType::kI64, "gather indices");
  check_same_ctx(table, indices);
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kGather;
  in.dtype = table.dtype();
  in.shape = indices.shape();
  in.operands = {table.id(), indices.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

namespace {

Array emit_scatter(Opcode op, Array base, Array indices, Array updates) {
  if (base.shape().rank() != 1) {
    throw std::invalid_argument("xla: scatter base must be rank 1");
  }
  require_dtype(indices, DType::kI64, "scatter indices");
  if (indices.shape() != updates.shape()) {
    throw std::invalid_argument("xla: scatter indices/updates shape mismatch");
  }
  if (base.dtype() != updates.dtype()) {
    throw std::invalid_argument("xla: scatter dtype mismatch");
  }
  check_same_ctx(base, indices);
  check_same_ctx(base, updates);
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = op;
  in.dtype = base.dtype();
  in.shape = base.shape();
  in.operands = {base.id(), indices.id(), updates.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

}  // namespace

Array scatter_add(Array base, Array indices, Array updates) {
  return emit_scatter(Opcode::kScatterAdd, base, indices, updates);
}

Array scatter_set(Array base, Array indices, Array updates) {
  return emit_scatter(Opcode::kScatterSet, base, indices, updates);
}

Array reduce_sum(Array a, int axis) {
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kReduceSum;
  in.dtype = a.dtype();
  if (axis == -1) {
    in.shape = Shape{};
  } else if (axis == 1 && a.shape().rank() == 2) {
    in.shape = Shape{a.shape().dim(0)};
  } else if (axis == 0 && a.shape().rank() == 1) {
    in.shape = Shape{};
    axis = -1;
  } else {
    throw std::invalid_argument("xla: unsupported reduce_sum axis");
  }
  in.operands = {a.id()};
  in.i0 = axis;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array reduce_max(Array a) {
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kReduceMax;
  in.dtype = a.dtype();
  in.shape = Shape{};
  in.operands = {a.id()};
  in.i0 = -1;
  return Array(&ctx, ctx.emit(std::move(in)));
}

Array dot(Array a, Array b) {
  if (a.shape().rank() != 1 || a.shape() != b.shape()) {
    throw std::invalid_argument("xla: dot expects equal rank-1 shapes");
  }
  require_dtype(a, DType::kF64, "dot");
  check_same_ctx(a, b);
  auto& ctx = ctx_or_throw();
  HloInstruction in;
  in.opcode = Opcode::kDot;
  in.dtype = DType::kF64;
  in.shape = Shape{};
  in.operands = {a.id(), b.id()};
  return Array(&ctx, ctx.emit(std::move(in)));
}

}  // namespace toast::xla
