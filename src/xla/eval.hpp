#pragma once

// Reference evaluation of single HLO instructions on Literals.  Used by the
// executor (functional semantics of fused groups) and by the constant-
// folding pass.

#include <vector>

#include "xla/hlo.hpp"
#include "xla/types.hpp"

namespace toast::xla {

/// Evaluate one instruction given its operand values.  kParam is not
/// handled here (the executor substitutes arguments).
Literal evaluate_instruction(const HloInstruction& instr,
                             const std::vector<const Literal*>& operands);

}  // namespace toast::xla
