#pragma once

// jit(): trace-compile-cache-execute, the JAX workflow of the paper's
// Figure 1 (trace -> HLO -> XLA compile -> hardware execution).
//
// A Jit wraps a pure function over Arrays.  Calls are dispatched through a
// Runtime that owns the simulated device, virtual clock and time log:
//   - first call per (shape signature, static key): trace + optimize,
//     charging the modelled compile time;
//   - every call: per-fusion-group device execution charged to the clock
//     under the kernel's name, plus a fixed dispatch overhead (higher than
//     the OpenMP runtime's - paper §4.1 footnote 10).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/host_model.hpp"
#include "accel/sim_device.hpp"
#include "accel/timelog.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "xla/array.hpp"
#include "xla/executor.hpp"

namespace toast::xla {

/// Per-process JAX-like runtime configuration and device handle.
class Runtime {
 public:
  Runtime(accel::SimDevice& device, accel::VirtualClock& clock,
          obs::Tracer& tracer)
      : device_(device), clock_(clock), tracer_(tracer) {}

  accel::SimDevice& device() { return device_; }
  accel::VirtualClock& clock() { return clock_; }
  obs::Tracer& tracer() { return tracer_; }
  /// Flat per-category view (the seed's TimeLog, aggregated from spans).
  accel::TimeLog log() const { return tracer_.timelog(); }

  /// Attach a fault injector (nullptr detaches).  Not owned.  Jitted
  /// calls then probe for launch faults before dispatch and retry
  /// injected OOMs on temp-buffer accounting.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }
  fault::FaultInjector* faults() { return faults_; }

  /// Which executor jitted calls use for value computation.  Compiled
  /// mode lowers each fusion group to a fused loop (bitwise-identical
  /// products and TimeLog — the interpreter is the oracle); a module the
  /// lowering rejects falls back to the interpreter per call.
  ExecMode executor() const { return exec_mode_; }
  void set_executor(ExecMode m) { exec_mode_ = m; }

  /// Host-side dispatch cost per jitted call (tracing cache lookup, arg
  /// handling, stream submission).
  double dispatch_overhead() const { return dispatch_overhead_; }
  void set_dispatch_overhead(double s) { dispatch_overhead_ = s; }

  /// Ratio of paper-scale to executed work (see omptarget::Runtime).
  double work_scale() const { return work_scale_; }
  void set_work_scale(double s) { work_scale_ = s; }

  /// Virtual streams jitted calls dispatch fusion groups onto (XLA's
  /// async dispatch).  Independent groups — per the HLO dependency edges —
  /// overlap their launch latency across streams; with 1 stream (the
  /// default) execution is the seed's serial timeline, bit for bit.  The
  /// CPU backend always executes on one stream.
  int streams() const { return n_streams_; }
  void set_streams(int n) { n_streams_ = n < 1 ? 1 : n; }

  /// JAX preallocates a device memory pool by default; the paper disables
  /// it when oversubscribing (§3.1.3).  With preallocation the pool claims
  /// the fraction below of device memory at startup.
  void enable_preallocation(double fraction = 0.75);
  void disable_preallocation();
  bool preallocation() const { return prealloc_bytes_ > 0; }

  /// x64 mode: the paper enables 64-bit floats (JAX defaults to 32).  We
  /// always compute in f64; this flag only doubles modelled traffic when
  /// disabled... which we therefore forbid.
  bool x64() const { return true; }

  std::size_t pool_bytes() const { return prealloc_bytes_; }

  /// Force the XLA *CPU* backend (paper §4.2): fusion groups execute on
  /// the host model instead of the device.  The CPU backend parallelizes
  /// only heavy ops (reductions/dots); elementwise groups run single
  /// threaded, which is why the paper measured it 7.4x slower than the
  /// threaded C++ baseline.
  void set_cpu_backend(accel::HostSpec spec, int heavy_threads,
                       int socket_active_threads);
  bool cpu_backend() const { return cpu_backend_; }
  const accel::HostModel& host_model() const { return host_model_; }
  int cpu_heavy_threads() const { return cpu_heavy_threads_; }
  int cpu_socket_active() const { return cpu_socket_active_; }

 private:
  accel::SimDevice& device_;
  accel::VirtualClock& clock_;
  obs::Tracer& tracer_;
  fault::FaultInjector* faults_ = nullptr;
  ExecMode exec_mode_ = ExecMode::kInterpreted;
  double dispatch_overhead_ = 1.5e-5;
  double work_scale_ = 1.0;
  int n_streams_ = 1;
  std::size_t prealloc_bytes_ = 0;
  bool cpu_backend_ = false;
  accel::HostModel host_model_;
  int cpu_heavy_threads_ = 1;
  int cpu_socket_active_ = 1;
};

using TracedFn =
    std::function<std::vector<Array>(const std::vector<Array>&)>;

class Jit {
 public:
  Jit(std::string name, TracedFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  /// Parameters whose device buffers the runtime may recycle for outputs
  /// (jax.jit donate_argnums).  Affects memory accounting only.
  void set_donated_params(std::vector<int> params) {
    donated_ = std::move(params);
  }

  /// Execute.  `static_key` distinguishes traces that depend on static
  /// (non-array) arguments, e.g. the padded interval length.
  std::vector<Literal> call(Runtime& rt, const std::vector<Literal>& args,
                            const std::string& static_key = "");

  /// Like call, and also expose the execution report (for tests/benches).
  std::vector<Literal> call_reported(Runtime& rt,
                                     const std::vector<Literal>& args,
                                     const std::string& static_key,
                                     ExecutionReport& report);

  const std::string& name() const { return name_; }
  std::size_t cache_size() const { return cache_.size(); }

  /// Drop all compiled executables (a fresh process has an empty JIT
  /// cache; the multi-process simulation resets between ranks).
  void clear_cache() { cache_.clear(); }

  /// Inspect a cached executable (nullptr if that signature was never
  /// compiled).
  const Compiled* lookup(const std::vector<Literal>& args,
                         const std::string& static_key = "") const;

 private:
  std::string signature(const std::vector<Literal>& args,
                        const std::string& static_key) const;
  const Compiled& get_or_compile(Runtime& rt,
                                 const std::vector<Literal>& args,
                                 const std::string& static_key);

  std::string name_;
  TracedFn fn_;
  std::vector<int> donated_;
  std::map<std::string, std::unique_ptr<Compiled>> cache_;
};

}  // namespace toast::xla
