#pragma once

// HLO-like intermediate representation: a static SSA graph of array
// operations.  Tracing a kernel (xla/array.hpp) produces an HloModule;
// optimization passes (xla/passes.hpp) rewrite it; the executor
// (xla/executor.hpp) evaluates it and meters the work.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xla/types.hpp"

namespace toast::xla {

enum class Opcode : std::uint8_t {
  // Leaves.
  kParam,
  kConstant,
  kIota,
  // Elementwise unary.
  kNeg,
  kAbs,
  kSign,
  kSqrt,
  kTanh,
  kSin,
  kCos,
  kExp,
  kLog,
  kFloor,
  kNot,
  kCastF64,
  kCastI64,
  // Elementwise binary.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMin,
  kMax,
  kAtan2,
  kMod,   // floating fmod / integer remainder
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  // Elementwise ternary.
  kSelect,
  kClamp,
  // Shape manipulation (free at execution, they move/replicate data).
  kReshape,
  kBroadcastCol,  // [n] -> [n, m]: replicate values across columns
  kBroadcastRow,  // [m] -> [n, m]: replicate the row n times
  kSliceCol,      // [n, m] -> [n]: extract column i0
  // Data-movement / reduction ("heavy": fusion group boundaries).
  kGather,      // (table[t], indices) -> indices.shape of table values
  kScatterAdd,  // (base[t], indices, updates) -> base with updates added
  kScatterSet,  // (base[t], indices, updates) -> base with updates stored
  kReduceSum,   // rank2 + axis=1 -> [n]; any rank + axis=-1 -> scalar
  kReduceMax,   // full reduction -> scalar
  kDot,         // ([n],[n]) -> scalar
};

const char* to_string(Opcode op);
bool is_elementwise(Opcode op);
bool is_heavy(Opcode op);
/// Floating-point cost per produced element (0 for structural ops).
double flops_per_element(Opcode op);

using InstrId = std::int32_t;

struct HloInstruction {
  Opcode opcode = Opcode::kParam;
  DType dtype = DType::kF64;
  Shape shape;
  std::vector<InstrId> operands;
  // Attributes (meaning depends on opcode): parameter index, iota length,
  // broadcast extent, slice column, reduce axis...
  std::int64_t i0 = 0;
  // Constant payload.
  std::optional<Literal> literal;
};

struct HloModule {
  std::string name;
  std::vector<HloInstruction> instructions;  // SSA order
  std::vector<InstrId> params;               // instruction ids of parameters
  std::vector<InstrId> roots;                // outputs

  const HloInstruction& at(InstrId id) const {
    return instructions[static_cast<std::size_t>(id)];
  }
  HloInstruction& at(InstrId id) {
    return instructions[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return instructions.size(); }

  std::string to_string() const;
};

}  // namespace toast::xla
