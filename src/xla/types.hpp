#pragma once

// Value types for the mini-XLA: dtypes, shapes and literals (host buffers).
//
// The real XLA supports many dtypes and ranks; the TOAST kernels need F64
// timestreams, I64 indices and boolean masks, with arrays of rank 0-2.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace toast::xla {

enum class DType : std::uint8_t { kF64, kI64, kPred };

const char* to_string(DType d);
std::size_t dtype_size(DType d);

/// Array extents; rank 0 (scalar) through rank 2.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { check(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    check();
  }

  int rank() const { return static_cast<int>(dims_.size()); }
  std::int64_t dim(int i) const { return dims_.at(static_cast<size_t>(i)); }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (const auto d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  void check() const {
    if (dims_.size() > 2) {
      throw std::invalid_argument("xla: only rank 0-2 shapes supported");
    }
    for (const auto d : dims_) {
      if (d < 0) throw std::invalid_argument("xla: negative dimension");
    }
  }
  std::vector<std::int64_t> dims_;
};

/// A concrete array value: shape + dtype + host storage.
class Literal {
 public:
  Literal() : dtype_(DType::kF64) {}
  Literal(Shape shape, DType dtype);

  static Literal scalar_f64(double v);
  static Literal scalar_i64(std::int64_t v);
  static Literal scalar_pred(bool v);
  static Literal from_f64(Shape shape, std::span<const double> data);
  static Literal from_i64(Shape shape, std::span<const std::int64_t> data);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }
  std::size_t byte_size() const {
    return static_cast<std::size_t>(num_elements()) * dtype_size(dtype_);
  }

  std::span<double> f64();
  std::span<const double> f64() const;
  std::span<std::int64_t> i64();
  std::span<const std::int64_t> i64() const;
  std::span<std::uint8_t> pred();
  std::span<const std::uint8_t> pred() const;

  /// Element as double regardless of dtype (for folding and tests).
  double as_double(std::int64_t i) const;

 private:
  Shape shape_;
  DType dtype_;
  std::variant<std::vector<double>, std::vector<std::int64_t>,
               std::vector<std::uint8_t>>
      data_;
};

}  // namespace toast::xla
