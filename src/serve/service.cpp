#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace toast::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One running job's bookkeeping in the event loop.
struct Running {
  int job = -1;              ///< index into the report's job vector
  JobDemand demand;
  std::vector<int> nodes;
  double remaining = 0.0;    ///< standalone-seconds of work left
  double rate = 1.0;         ///< processor-sharing service rate
};

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

mpisim::JobConfig resolve_job_config(const ServiceSpec& spec,
                                     const JobSpec& job,
                                     const tune::ScheduleLibrary& lib,
                                     bool* library_hit) {
  if (library_hit != nullptr) {
    *library_hit = false;
  }
  mpisim::JobConfig cfg;
  cfg.problem = workload_problem(job.workload);
  if (job.has_schedule) {
    cfg.schedule = job.schedule;
  } else {
    bool found = false;
    if (job.tuned && !lib.empty()) {
      tune::LibraryQuery q;
      q.workload = job.workload;
      q.nodes = cfg.problem.nodes;
      q.procs_per_node = cfg.problem.procs_per_node;
      q.backend = job.backend;
      if (const config::ScheduleConfig* s = tune::library_lookup(lib, q)) {
        cfg.schedule = *s;
        found = true;
        if (library_hit != nullptr) {
          *library_hit = true;
        }
      }
    }
    if (!found && !job.backend.empty()) {
      cfg.schedule.backend = job.backend;
    }
  }
  cfg.seed = job.seed;
  cfg.map_iterations = job.map_iterations;
  cfg.pipeline_run = job.pipeline;
  cfg.device_spec = spec.fleet.device;
  cfg.network = spec.fleet.network;
  const int t = spec.tenant_index(job.tenant);
  if (t >= 0) {
    cfg.fault_plan = spec.tenants[static_cast<std::size_t>(t)].faults;
    cfg.resilience_policy =
        spec.tenants[static_cast<std::size_t>(t)].resilience;
  }
  return cfg;
}

Service::Service(ServiceSpec spec) : spec_(std::move(spec)) {
  if (!spec_.schedule_library.empty()) {
    library_ = tune::ScheduleLibrary::load_file(spec_.schedule_library);
  }
}

ServiceReport Service::run() {
  ServiceReport report;
  report.policy = spec_.policy;
  report.submitted = static_cast<int>(spec_.jobs.size());
  report.tenants.resize(spec_.tenants.size());
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
    report.tenants[t].name = spec_.tenants[t].name;
    report.tenants[t].share = spec_.tenants[t].share;
    tracer_.set_stream_name(static_cast<int>(t) + 1,
                            "tenant:" + spec_.tenants[t].name);
  }

  Packer packer(spec_.fleet);
  std::vector<JobDemand> demands(spec_.jobs.size());
  report.jobs.resize(spec_.jobs.size());

  // --- admission: resolve, feasibility-check and (for admitted jobs)
  // run the standalone job up front.  Products are computed outside the
  // event loop precisely so the service state cannot perturb them.
  for (std::size_t i = 0; i < spec_.jobs.size(); ++i) {
    const JobSpec& js = spec_.jobs[i];
    const int t = spec_.tenant_index(js.tenant);
    const TenantSpec& tenant = spec_.tenants[static_cast<std::size_t>(t)];
    ServedJob& sj = report.jobs[i];
    sj.name = js.name;
    sj.tenant = js.tenant;
    sj.workload = js.workload;
    sj.priority = js.has_priority ? js.priority : tenant.priority;
    sj.submit_s = js.submit_s;
    ++report.tenants[static_cast<std::size_t>(t)].submitted;

    sj.config = resolve_job_config(spec_, js, library_, &sj.library_hit);
    if (js.tuned) {
      if (sj.library_hit) {
        ++report.library_hits;
      } else {
        ++report.library_misses;
      }
    }
    demands[i] = Packer::demand_for(sj.config);

    std::string reason;
    if (!packer.feasible(demands[i], &reason)) {
      sj.reject_reason = reason;
      ++report.rejected;
      ++report.tenants[static_cast<std::size_t>(t)].rejected;
      continue;
    }
    sj.result = mpisim::run_benchmark_job(sj.config);
    if (sj.result.oom) {
      sj.reject_reason = "standalone OOM: " + sj.result.oom_reason;
      ++report.rejected;
      ++report.tenants[static_cast<std::size_t>(t)].rejected;
      continue;
    }
    sj.service_s = sj.result.runtime;
    sj.admitted = true;
    ++report.admitted;
    ++report.tenants[static_cast<std::size_t>(t)].admitted;
  }

  // --- event loop on the service clock ------------------------------
  std::vector<int> arrivals;  // admitted job indices by (submit_s, index)
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (report.jobs[i].admitted) {
      arrivals.push_back(static_cast<int>(i));
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(), [&](int a, int b) {
    return report.jobs[static_cast<std::size_t>(a)].submit_s <
           report.jobs[static_cast<std::size_t>(b)].submit_s;
  });

  std::vector<int> queue;
  std::vector<Running> running;
  std::vector<double> charged(spec_.tenants.size(), 0.0);
  std::vector<int> running_count(spec_.tenants.size(), 0);
  double busy_node_seconds = 0.0;
  double now = 0.0;
  std::size_t next_arrival = 0;

  const auto tenant_of = [&](int job) {
    return spec_.tenant_index(report.jobs[static_cast<std::size_t>(job)].tenant);
  };

  const auto quota_ok = [&](int job) {
    const int t = tenant_of(job);
    const int quota = spec_.tenants[static_cast<std::size_t>(t)].max_running;
    return quota == 0 || running_count[static_cast<std::size_t>(t)] < quota;
  };

  // Policy order over queued jobs.  Fair-share compares charged
  // node-seconds / share (charge-on-start), breaking ties by tenant
  // declaration order then submission; priority compares the strict
  // level then submission.  Both end on the job index, so the order is
  // a total one and the loop is deterministic.
  const auto policy_less = [&](int a, int b) {
    const ServedJob& ja = report.jobs[static_cast<std::size_t>(a)];
    const ServedJob& jb = report.jobs[static_cast<std::size_t>(b)];
    if (spec_.policy == SchedPolicy::kPriority) {
      if (ja.priority != jb.priority) {
        return ja.priority > jb.priority;
      }
    } else {
      const int ta = tenant_of(a);
      const int tb = tenant_of(b);
      const double ua = charged[static_cast<std::size_t>(ta)] /
                        spec_.tenants[static_cast<std::size_t>(ta)].share;
      const double ub = charged[static_cast<std::size_t>(tb)] /
                        spec_.tenants[static_cast<std::size_t>(tb)].share;
      if (ua != ub) {
        return ua < ub;
      }
      if (ta != tb) {
        return ta < tb;
      }
    }
    if (ja.submit_s != jb.submit_s) {
      return ja.submit_s < jb.submit_s;
    }
    return a < b;
  };

  const auto start_job = [&](int job, const std::vector<int>& nodes) {
    ServedJob& sj = report.jobs[static_cast<std::size_t>(job)];
    const int t = tenant_of(job);
    const JobDemand& d = demands[static_cast<std::size_t>(job)];
    packer.place(d, nodes);
    sj.start_s = now;
    sj.queue_wait_s = now - sj.submit_s;
    sj.nodes = nodes;
    charged[static_cast<std::size_t>(t)] +=
        sj.service_s * static_cast<double>(d.nodes);
    ++running_count[static_cast<std::size_t>(t)];
    Running r;
    r.job = job;
    r.demand = d;
    r.nodes = nodes;
    r.remaining = sj.service_s;
    running.push_back(std::move(r));
  };

  const auto sched_pass = [&]() {
    // Greedy, work-conserving, preemption-free backfill: every pass
    // re-sorts (a placement changes fair-share charges and quotas),
    // places the first fitting eligible job, and repeats until a full
    // scan places nothing.  Jobs that do not fit are skipped, never a
    // barrier.
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<int> order = queue;
      std::sort(order.begin(), order.end(), policy_less);
      for (int job : order) {
        if (!quota_ok(job)) {
          continue;
        }
        const std::vector<int> nodes =
            packer.try_place(demands[static_cast<std::size_t>(job)]);
        if (nodes.empty()) {
          continue;
        }
        queue.erase(std::find(queue.begin(), queue.end(), job));
        start_job(job, nodes);
        progress = true;
        break;
      }
    }
    // Defensive self-check: after a pass, no eligible queued job may
    // still fit (that would be a work-conservation bug, not a state).
    for (int job : queue) {
      if (quota_ok(job) &&
          !packer.try_place(demands[static_cast<std::size_t>(job)]).empty()) {
        report.work_conserving = false;
      }
    }
    // Contention rates: 1 / (max accel co-residents over the job's
    // nodes) for accelerator jobs, 1 for CPU jobs.
    for (Running& r : running) {
      r.rate = r.demand.accel
                   ? 1.0 / static_cast<double>(std::max(
                         1, packer.max_accel_coresidents(r.nodes)))
                   : 1.0;
    }
  };

  while (next_arrival < arrivals.size() || !queue.empty() ||
         !running.empty()) {
    double t_next = kInf;
    if (next_arrival < arrivals.size()) {
      t_next = report.jobs[static_cast<std::size_t>(arrivals[next_arrival])]
                   .submit_s;
    }
    std::vector<double> fin(running.size(), kInf);
    for (std::size_t i = 0; i < running.size(); ++i) {
      fin[i] = now + running[i].remaining / running[i].rate;
      t_next = std::min(t_next, fin[i]);
    }
    if (!std::isfinite(t_next)) {
      // Queued jobs with nothing running and no arrivals left: every
      // queued job is feasible-on-empty-fleet, so this cannot happen
      // unless the packer is inconsistent.
      report.work_conserving = false;
      break;
    }

    const double dt = t_next - now;
    if (dt > 0.0) {
      int occupied = 0;
      for (const NodeState& n : packer.nodes()) {
        occupied += n.jobs > 0 ? 1 : 0;
      }
      busy_node_seconds += static_cast<double>(occupied) * dt;
    }
    for (Running& r : running) {
      r.remaining = std::max(0.0, r.remaining - r.rate * dt);
    }
    now = t_next;
    clock_.advance(now - clock_.now());

    // Completions (fin == t_next is exact: both sides are the same
    // computed double).
    for (std::size_t i = running.size(); i-- > 0;) {
      if (fin[i] > t_next) {
        continue;
      }
      Running r = running[static_cast<std::size_t>(i)];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      ServedJob& sj = report.jobs[static_cast<std::size_t>(r.job)];
      const int t = tenant_of(r.job);
      sj.finish_s = now;
      sj.served_s = now - sj.start_s;
      sj.completed = true;
      packer.release(r.demand, r.nodes);
      --running_count[static_cast<std::size_t>(t)];
      ++report.completed;
      TenantStats& ts = report.tenants[static_cast<std::size_t>(t)];
      ++ts.completed;
      ts.max_wait_s = std::max(ts.max_wait_s, sj.queue_wait_s);
      ts.sum_wait_s += sj.queue_wait_s;
      const obs::SpanId id = tracer_.record_at(
          sj.name, "job", sj.start_s, sj.served_s,
          sj.config.schedule.backend, nullptr, true);
      tracer_.set_stream(id, t + 1);
      tracer_.add_counter(id, "queue_wait_s", sj.queue_wait_s);
      tracer_.add_counter(id, "nodes", static_cast<double>(r.demand.nodes));
    }

    while (next_arrival < arrivals.size() &&
           report.jobs[static_cast<std::size_t>(arrivals[next_arrival])]
                   .submit_s <= now) {
      queue.push_back(arrivals[next_arrival++]);
    }

    sched_pass();
  }

  report.makespan_s = now;
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
    report.tenants[t].node_seconds = charged[t];
  }
  if (report.makespan_s > 0.0) {
    report.utilization =
        busy_node_seconds /
        (static_cast<double>(spec_.fleet.nodes) * report.makespan_s);
  }
  return report;
}

bool results_bitwise_equal(const mpisim::JobResult& a,
                           const mpisim::JobResult& b) {
  if (a.oom != b.oom || a.oom_reason != b.oom_reason) {
    return false;
  }
  if (a.runtime != b.runtime || a.host_seconds != b.host_seconds ||
      a.device_seconds != b.device_seconds ||
      a.device_busy_per_gpu != b.device_busy_per_gpu ||
      a.transfer_seconds != b.transfer_seconds ||
      a.comm_seconds != b.comm_seconds) {
    return false;
  }
  if (a.world_ranks != b.world_ranks) {
    return false;
  }
  if (a.memory.host_bytes_per_node != b.memory.host_bytes_per_node ||
      a.memory.device_bytes_per_gpu != b.memory.device_bytes_per_gpu ||
      a.memory.host_oom != b.memory.host_oom ||
      a.memory.device_oom != b.memory.device_oom) {
    return false;
  }
  if (a.fault_counters != b.fault_counters ||
      a.plan_counters != b.plan_counters ||
      a.degraded_kernels != b.degraded_kernels) {
    return false;
  }
  const std::vector<std::string> cats = a.rank_log.categories();
  if (cats != b.rank_log.categories()) {
    return false;
  }
  for (const std::string& c : cats) {
    if (a.rank_log.seconds(c) != b.rank_log.seconds(c) ||
        a.rank_log.calls(c) != b.rank_log.calls(c)) {
      return false;
    }
  }
  return true;
}

double queue_wait_percentile(const ServiceReport& report, double pct) {
  std::vector<double> waits;
  for (const ServedJob& j : report.jobs) {
    if (j.completed) {
      waits.push_back(j.queue_wait_s);
    }
  }
  if (waits.empty()) {
    return 0.0;
  }
  std::sort(waits.begin(), waits.end());
  // Nearest-rank: ceil(p/100 * N), 1-based.
  const double clamped = std::min(100.0, std::max(0.0, pct));
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(waits.size())));
  if (rank == 0) {
    rank = 1;
  }
  return waits[rank - 1];
}

void write_result_json(std::ostream& out, const ServiceReport& report) {
  using obs::json::escape;
  out << "{\n";
  out << "  \"schema\": \"toastcase-serve-result-v1\",\n";
  out << "  \"policy\": \"" << to_string(report.policy) << "\",\n";
  out << "  \"makespan_s\": " << fmt(report.makespan_s) << ",\n";
  out << "  \"work_conserving\": "
      << (report.work_conserving ? "true" : "false") << ",\n";
  out << "  \"submitted\": " << report.submitted << ",\n";
  out << "  \"admitted\": " << report.admitted << ",\n";
  out << "  \"rejected\": " << report.rejected << ",\n";
  out << "  \"completed\": " << report.completed << ",\n";
  out << "  \"library_hits\": " << report.library_hits << ",\n";
  out << "  \"library_misses\": " << report.library_misses << ",\n";
  out << "  \"utilization\": " << fmt(report.utilization) << ",\n";
  out << "  \"queue_wait_p50_s\": " << fmt(queue_wait_percentile(report, 50))
      << ",\n";
  out << "  \"queue_wait_p95_s\": " << fmt(queue_wait_percentile(report, 95))
      << ",\n";
  out << "  \"queue_wait_p99_s\": " << fmt(queue_wait_percentile(report, 99))
      << ",\n";
  out << "  \"tenants\": [\n";
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const TenantStats& ts = report.tenants[t];
    out << "    {\"name\": \"" << escape(ts.name) << "\", \"share\": "
        << fmt(ts.share) << ", \"submitted\": " << ts.submitted
        << ", \"admitted\": " << ts.admitted << ", \"rejected\": "
        << ts.rejected << ", \"completed\": " << ts.completed
        << ", \"node_seconds\": " << fmt(ts.node_seconds)
        << ", \"max_wait_s\": " << fmt(ts.max_wait_s)
        << ", \"sum_wait_s\": " << fmt(ts.sum_wait_s) << "}"
        << (t + 1 < report.tenants.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const ServedJob& j = report.jobs[i];
    out << "    {\n";
    out << "      \"name\": \"" << escape(j.name) << "\",\n";
    out << "      \"tenant\": \"" << escape(j.tenant) << "\",\n";
    out << "      \"workload\": \"" << escape(j.workload) << "\",\n";
    out << "      \"backend\": \"" << escape(j.config.schedule.backend)
        << "\",\n";
    out << "      \"schedule_hash\": \"" << j.config.schedule.hash_hex()
        << "\",\n";
    out << "      \"priority\": " << j.priority << ",\n";
    out << "      \"submit_s\": " << fmt(j.submit_s) << ",\n";
    out << "      \"start_s\": " << fmt(j.start_s) << ",\n";
    out << "      \"finish_s\": " << fmt(j.finish_s) << ",\n";
    out << "      \"queue_wait_s\": " << fmt(j.queue_wait_s) << ",\n";
    out << "      \"service_s\": " << fmt(j.service_s) << ",\n";
    out << "      \"served_s\": " << fmt(j.served_s) << ",\n";
    out << "      \"admitted\": " << (j.admitted ? "true" : "false") << ",\n";
    out << "      \"completed\": " << (j.completed ? "true" : "false")
        << ",\n";
    out << "      \"library_hit\": " << (j.library_hit ? "true" : "false")
        << ",\n";
    out << "      \"reject_reason\": \"" << escape(j.reject_reason)
        << "\",\n";
    out << "      \"nodes\": [";
    for (std::size_t n = 0; n < j.nodes.size(); ++n) {
      out << j.nodes[n] << (n + 1 < j.nodes.size() ? ", " : "");
    }
    out << "],\n";
    out << "      \"world_ranks\": " << j.result.world_ranks << ",\n";
    out << "      \"runtime\": " << fmt(j.result.runtime) << ",\n";
    out << "      \"fault_counters\": {";
    {
      std::size_t k = 0;
      for (const auto& [key, value] : j.result.fault_counters) {
        out << "\"" << escape(key) << "\": " << fmt(value)
            << (++k < j.result.fault_counters.size() ? ", " : "");
      }
    }
    out << "},\n";
    out << "      \"degraded_kernels\": [";
    for (std::size_t k = 0; k < j.result.degraded_kernels.size(); ++k) {
      out << "\"" << escape(j.result.degraded_kernels[k]) << "\""
          << (k + 1 < j.result.degraded_kernels.size() ? ", " : "");
    }
    out << "],\n";
    out << "      \"timelog\": {";
    {
      const std::vector<std::string> cats = j.result.rank_log.categories();
      for (std::size_t k = 0; k < cats.size(); ++k) {
        out << "\"" << escape(cats[k]) << "\": ["
            << fmt(j.result.rank_log.seconds(cats[k])) << ", "
            << j.result.rank_log.calls(cats[k]) << "]"
            << (k + 1 < cats.size() ? ", " : "");
      }
    }
    out << "}\n";
    out << "    }" << (i + 1 < report.jobs.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace toast::serve
