#include "serve/packer.hpp"

#include <sstream>
#include <stdexcept>

namespace toast::serve {

Packer::Packer(const FleetSpec& fleet) : fleet_(fleet) {
  if (fleet.nodes < 1) {
    throw std::runtime_error("packer: fleet must have >= 1 node");
  }
  nodes_.resize(static_cast<std::size_t>(fleet.nodes));
}

JobDemand Packer::demand_for(const mpisim::JobConfig& cfg) {
  const bench_model::ProblemSize p = cfg.effective_problem();
  const mpisim::MemoryFootprint mem = mpisim::estimate_memory(cfg);
  JobDemand d;
  d.nodes = p.nodes;
  d.host_bytes_per_node = mem.host_bytes_per_node;
  d.device_bytes_per_gpu = mem.device_bytes_per_gpu;
  d.accel = core::is_accel(cfg.backend_id());
  d.mps = cfg.schedule.device.mps;
  return d;
}

bool Packer::feasible(const JobDemand& d, std::string* reason) const {
  std::ostringstream why;
  if (d.nodes > fleet_.nodes) {
    why << "needs " << d.nodes << " nodes, fleet has " << fleet_.nodes;
  } else if (d.host_bytes_per_node > fleet_.host.memory_bytes) {
    why << "host footprint " << d.host_bytes_per_node
        << " B/node exceeds node memory " << fleet_.host.memory_bytes << " B";
  } else if (d.accel && d.device_bytes_per_gpu > fleet_.device.memory_bytes) {
    why << "device footprint " << d.device_bytes_per_gpu
        << " B/GPU exceeds device memory " << fleet_.device.memory_bytes
        << " B";
  } else {
    return true;
  }
  if (reason != nullptr) {
    *reason = why.str();
  }
  return false;
}

bool Packer::node_fits(const NodeState& n, const JobDemand& d) const {
  if (n.host_bytes + d.host_bytes_per_node > fleet_.host.memory_bytes) {
    return false;
  }
  if (!d.accel) {
    return true;
  }
  if (n.exclusive) {
    return false;  // an MPS-off job holds this node's GPUs
  }
  if (!d.mps && n.accel_jobs > 0) {
    return false;  // MPS-off jobs demand empty GPUs
  }
  return n.device_bytes + d.device_bytes_per_gpu <= fleet_.device.memory_bytes;
}

std::vector<int> Packer::try_place(const JobDemand& d) const {
  std::vector<int> placed;
  placed.reserve(static_cast<std::size_t>(d.nodes));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (node_fits(nodes_[i], d)) {
      placed.push_back(static_cast<int>(i));
      if (static_cast<int>(placed.size()) == d.nodes) {
        return placed;
      }
    }
  }
  return {};
}

void Packer::place(const JobDemand& d, const std::vector<int>& nodes) {
  for (int i : nodes) {
    NodeState& n = nodes_.at(static_cast<std::size_t>(i));
    n.host_bytes += d.host_bytes_per_node;
    ++n.jobs;
    if (d.accel) {
      n.device_bytes += d.device_bytes_per_gpu;
      ++n.accel_jobs;
      if (!d.mps) {
        n.exclusive = true;
      }
    }
  }
}

void Packer::release(const JobDemand& d, const std::vector<int>& nodes) {
  for (int i : nodes) {
    NodeState& n = nodes_.at(static_cast<std::size_t>(i));
    n.host_bytes -= d.host_bytes_per_node;
    --n.jobs;
    if (d.accel) {
      n.device_bytes -= d.device_bytes_per_gpu;
      --n.accel_jobs;
      if (!d.mps) {
        n.exclusive = false;
      }
    }
  }
}

int Packer::max_accel_coresidents(const std::vector<int>& nodes) const {
  int worst = 0;
  for (int i : nodes) {
    const NodeState& n = nodes_.at(static_cast<std::size_t>(i));
    if (n.accel_jobs > worst) {
      worst = n.accel_jobs;
    }
  }
  return worst;
}

}  // namespace toast::serve
