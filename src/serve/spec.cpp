#include "serve/spec.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "bench_model/problem.hpp"

namespace toast::serve {

namespace {

using obs::json::Value;

void reject_unknown_keys(const Value& v, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, _] : v.object) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
}

std::string string_at(const Value& v, const std::string& key,
                      const std::string& where) {
  const Value* m = v.find(key);
  if (m == nullptr || !m->is_string()) {
    throw std::runtime_error(where + ": '" + key + "' must be a string");
  }
  return m->string;
}

std::string string_or(const Value& v, const std::string& key,
                      const std::string& fallback, const std::string& where) {
  if (v.find(key) == nullptr) {
    return fallback;
  }
  return string_at(v, key, where);
}

double number_at(const Value& v, const std::string& key,
                 const std::string& where) {
  const Value* m = v.find(key);
  if (m == nullptr || !m->is_number()) {
    throw std::runtime_error(where + ": '" + key + "' must be a number");
  }
  return m->number;
}

double number_or(const Value& v, const std::string& key, double fallback,
                 const std::string& where) {
  if (v.find(key) == nullptr) {
    return fallback;
  }
  return number_at(v, key, where);
}

int int_or(const Value& v, const std::string& key, int fallback,
           const std::string& where) {
  return static_cast<int>(
      number_or(v, key, static_cast<double>(fallback), where));
}

bool bool_or(const Value& v, const std::string& key, bool fallback,
             const std::string& where) {
  const Value* m = v.find(key);
  if (m == nullptr) {
    return fallback;
  }
  if (m->type != Value::Type::kBool) {
    throw std::runtime_error(where + ": '" + key + "' must be a boolean");
  }
  return m->boolean;
}

FleetSpec fleet_from_value(const Value& v, const std::string& where) {
  if (!v.is_object()) {
    throw std::runtime_error(where + ": must be an object");
  }
  reject_unknown_keys(v, where, {"nodes", "gpus_per_node"});
  FleetSpec fleet;
  fleet.nodes = int_or(v, "nodes", fleet.nodes, where);
  fleet.gpus_per_node = int_or(v, "gpus_per_node", fleet.gpus_per_node, where);
  if (fleet.nodes < 1) {
    throw std::runtime_error(where + ": 'nodes' must be >= 1");
  }
  if (fleet.gpus_per_node < 1) {
    throw std::runtime_error(where + ": 'gpus_per_node' must be >= 1");
  }
  return fleet;
}

TenantSpec tenant_from_value(const Value& v, const std::string& where) {
  if (!v.is_object()) {
    throw std::runtime_error(where + ": tenant must be an object");
  }
  reject_unknown_keys(v, where,
                      {"name", "share", "max_running", "priority", "faults",
                       "resilience"});
  TenantSpec t;
  t.name = string_at(v, "name", where);
  if (t.name.empty()) {
    throw std::runtime_error(where + ": 'name' must not be empty");
  }
  t.share = number_or(v, "share", t.share, where);
  if (!(t.share > 0.0)) {
    throw std::runtime_error(where + ": 'share' must be > 0");
  }
  t.max_running = int_or(v, "max_running", t.max_running, where);
  if (t.max_running < 0) {
    throw std::runtime_error(where + ": 'max_running' must be >= 0");
  }
  t.priority = int_or(v, "priority", t.priority, where);
  if (const Value* f = v.find("faults")) {
    t.faults = fault::FaultPlan::from_value(*f, where + ".faults");
  }
  if (const Value* r = v.find("resilience")) {
    t.resilience =
        resilience::Policy::from_value(*r, where + ".resilience");
  }
  return t;
}

mpisim::PipelineRun pipeline_from_string(const std::string& s,
                                         const std::string& where) {
  if (s == "staged") {
    return mpisim::PipelineRun::kStaged;
  }
  if (s == "graph") {
    return mpisim::PipelineRun::kGraphSerial;
  }
  if (s == "overlap") {
    return mpisim::PipelineRun::kGraphOverlap;
  }
  throw std::runtime_error(where +
                           ": 'pipeline' must be staged|graph|overlap");
}

JobSpec job_from_value(const Value& v, const std::string& where) {
  if (!v.is_object()) {
    throw std::runtime_error(where + ": job must be an object");
  }
  reject_unknown_keys(v, where,
                      {"name", "tenant", "workload", "backend", "priority",
                       "submit_s", "seed", "map_iterations", "tuned",
                       "schedule", "pipeline"});
  JobSpec j;
  j.name = string_at(v, "name", where);
  if (j.name.empty()) {
    throw std::runtime_error(where + ": 'name' must not be empty");
  }
  j.tenant = string_at(v, "tenant", where);
  j.workload = string_or(v, "workload", j.workload, where);
  workload_problem(j.workload);  // validates the class name
  j.backend = string_or(v, "backend", "", where);
  if (v.find("priority") != nullptr) {
    j.priority = int_or(v, "priority", 0, where);
    j.has_priority = true;
  }
  j.submit_s = number_or(v, "submit_s", 0.0, where);
  if (j.submit_s < 0.0) {
    throw std::runtime_error(where + ": 'submit_s' must be >= 0");
  }
  j.seed = static_cast<std::uint64_t>(
      number_or(v, "seed", static_cast<double>(j.seed), where));
  j.map_iterations = int_or(v, "map_iterations", 0, where);
  if (j.map_iterations < 0) {
    throw std::runtime_error(where + ": 'map_iterations' must be >= 0");
  }
  j.tuned = bool_or(v, "tuned", false, where);
  j.pipeline = pipeline_from_string(string_or(v, "pipeline", "staged", where),
                                    where);
  if (const Value* s = v.find("schedule")) {
    if (!j.backend.empty()) {
      throw std::runtime_error(
          where + ": 'backend' and 'schedule' are mutually exclusive "
                  "(the schedule carries its own backend slot)");
    }
    j.schedule = config::ScheduleConfig::from_value(*s, where + ".schedule");
    j.has_schedule = true;
  }
  return j;
}

}  // namespace

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFairShare:
      return "fair_share";
    case SchedPolicy::kPriority:
      return "priority";
  }
  return "fair_share";
}

SchedPolicy sched_policy_from_string(const std::string& s) {
  if (s == "fair_share") {
    return SchedPolicy::kFairShare;
  }
  if (s == "priority") {
    return SchedPolicy::kPriority;
  }
  throw std::runtime_error("serve: unknown policy '" + s +
                           "' (expected fair_share|priority)");
}

int ServiceSpec::tenant_index(const std::string& name) const {
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

ServiceSpec ServiceSpec::from_value(const Value& doc,
                                    const std::string& where) {
  if (!doc.is_object()) {
    throw std::runtime_error(where + ": must be an object");
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "toastcase-serve-v1") {
    throw std::runtime_error(where + ": expected schema toastcase-serve-v1");
  }
  reject_unknown_keys(doc, where,
                      {"schema", "policy", "schedule_library", "fleet",
                       "tenants", "jobs"});
  ServiceSpec spec;
  spec.policy = sched_policy_from_string(
      string_or(doc, "policy", "fair_share", where));
  spec.schedule_library = string_or(doc, "schedule_library", "", where);
  if (const Value* f = doc.find("fleet")) {
    spec.fleet = fleet_from_value(*f, where + ".fleet");
  }

  const Value* tenants = doc.find("tenants");
  if (tenants == nullptr || !tenants->is_array() || tenants->array.empty()) {
    throw std::runtime_error(where +
                             ": 'tenants' must be a non-empty array");
  }
  std::set<std::string> names;
  int i = 0;
  for (const Value& t : tenants->array) {
    const std::string tw = where + ".tenants[" + std::to_string(i++) + "]";
    TenantSpec tenant = tenant_from_value(t, tw);
    if (!names.insert(tenant.name).second) {
      throw std::runtime_error(tw + ": duplicate tenant '" + tenant.name +
                               "'");
    }
    spec.tenants.push_back(std::move(tenant));
  }

  const Value* jobs = doc.find("jobs");
  if (jobs == nullptr || !jobs->is_array() || jobs->array.empty()) {
    throw std::runtime_error(where + ": 'jobs' must be a non-empty array");
  }
  std::set<std::string> job_names;
  i = 0;
  for (const Value& jv : jobs->array) {
    const std::string jw = where + ".jobs[" + std::to_string(i++) + "]";
    JobSpec job = job_from_value(jv, jw);
    if (spec.tenant_index(job.tenant) < 0) {
      throw std::runtime_error(jw + ": unknown tenant '" + job.tenant + "'");
    }
    if (!job_names.insert(job.name).second) {
      throw std::runtime_error(jw + ": duplicate job '" + job.name + "'");
    }
    spec.jobs.push_back(std::move(job));
  }
  return spec;
}

ServiceSpec ServiceSpec::parse(const std::string& text) {
  return from_value(Value::parse(text), "serve spec");
}

ServiceSpec ServiceSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("serve spec: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bench_model::ProblemSize workload_problem(const std::string& name) {
  if (name == "tiny") {
    return bench_model::tiny_problem();
  }
  if (name == "medium") {
    return bench_model::medium_problem();
  }
  if (name == "large") {
    return bench_model::large_problem();
  }
  throw std::runtime_error("serve: unknown workload '" + name +
                           "' (expected tiny|medium|large)");
}

}  // namespace toast::serve
