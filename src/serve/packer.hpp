#pragma once

// Device-memory-aware fleet packer (docs/MODEL.md §13).
//
// The packer tracks per-node host-memory and per-GPU device-memory
// commitments and decides where (and whether) a job fits right now.
// Demands come from the same paper-scale footprint model the Figure 4
// OOM sweep uses (mpisim::estimate_memory), so a job the standalone
// model would OOM is exactly a job the service refuses to admit.
//
// Sharing model: accelerator jobs occupy every GPU of each node they
// land on (ranks are spread across the node's GPUs).  With MPS enabled
// in the job's schedule, multiple jobs may co-locate on a node's GPUs
// as long as the summed per-GPU footprints fit; with MPS disabled the
// job takes its nodes' GPUs exclusively (and refuses to join a node
// where another accel job already runs).  CPU jobs only commit host
// memory.  Placement is first-fit over ascending node ids — fully
// deterministic, no randomized bin choice.

#include <vector>

#include "serve/spec.hpp"

namespace toast::serve {

/// Resource demand of one job, derived from its resolved config.
struct JobDemand {
  int nodes = 1;                    ///< distinct fleet nodes required
  double host_bytes_per_node = 0.0;
  double device_bytes_per_gpu = 0.0;
  bool accel = false;               ///< occupies GPUs at all
  bool mps = true;                  ///< may share GPUs with other jobs
};

struct NodeState {
  double host_bytes = 0.0;    ///< committed host memory
  double device_bytes = 0.0;  ///< committed per-GPU device memory
  int accel_jobs = 0;         ///< co-resident accelerator jobs
  bool exclusive = false;     ///< an MPS-off job holds the GPUs
  int jobs = 0;               ///< all co-resident jobs
};

class Packer {
 public:
  explicit Packer(const FleetSpec& fleet);

  /// The demand a resolved job config places on the fleet.
  static JobDemand demand_for(const mpisim::JobConfig& cfg);

  /// True if the demand could ever fit on an EMPTY fleet (admission
  /// check); `reason` receives a structured explanation on failure.
  bool feasible(const JobDemand& d, std::string* reason) const;

  /// Nodes the job would run on right now, first-fit over ascending
  /// ids; empty if it does not currently fit (the caller keeps it
  /// queued).  Does not mutate state.
  std::vector<int> try_place(const JobDemand& d) const;

  /// Commit / release a placement returned by try_place.
  void place(const JobDemand& d, const std::vector<int>& nodes);
  void release(const JobDemand& d, const std::vector<int>& nodes);

  /// Highest number of co-resident accelerator jobs across `nodes`
  /// (>= 1 when the querying job itself is placed there); drives the
  /// processor-sharing contention model.
  int max_accel_coresidents(const std::vector<int>& nodes) const;

  const std::vector<NodeState>& nodes() const { return nodes_; }
  const FleetSpec& fleet() const { return fleet_; }

 private:
  bool node_fits(const NodeState& n, const JobDemand& d) const;

  FleetSpec fleet_;
  std::vector<NodeState> nodes_;
};

}  // namespace toast::serve
