#pragma once

// Multi-tenant job-service vocabulary (docs/MODEL.md §13).
//
// A ServiceSpec describes one serving scenario: the shared fleet, the
// tenants (fair-share weight, quota, default priority, per-tenant chaos
// plan and resilience policy) and the jobs they submit (workload class,
// backend or explicit per-job schedule, arrival time, graph mode).
//
// JSON schema "toastcase-serve-v1" (parse/load_file/from_value; strict:
// unknown keys reject at EVERY nesting level, matching the fault,
// resilience and schedule parsers — a typo must not silently become a
// default):
//
// {
//   "schema": "toastcase-serve-v1",
//   "policy": "fair_share" | "priority",
//   "schedule_library": "bench/schedules/index.json",   // optional
//   "fleet": {"nodes": 4, "gpus_per_node": 4},
//   "tenants": [
//     {"name": "cmb-a", "share": 2.0, "max_running": 2, "priority": 1,
//      "faults": { ...toastcase-fault-plan-v1... },
//      "resilience": { ...toastcase-resilience-policy-v1... }}
//   ],
//   "jobs": [
//     {"name": "j0", "tenant": "cmb-a", "workload": "tiny",
//      "backend": "omp-target", "submit_s": 0.0, "priority": 3,
//      "seed": 2023, "map_iterations": 2, "tuned": false,
//      "pipeline": "staged" | "graph" | "overlap",
//      "schedule": { ...toastcase-schedule-v1... }}
//   ]
// }
//
// `backend` and `schedule` are mutually exclusive (an explicit schedule
// already carries its backend slot).  `tuned` consults the persisted
// schedule library (tune::ScheduleLibrary) for a per-(workload,
// topology, backend) artifact; a miss falls back to the default
// schedule and is counted, never an error.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/specs.hpp"
#include "config/schedule.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"
#include "obs/json.hpp"
#include "resilience/policy.hpp"

namespace toast::serve {

/// Queue ordering policy of the admission controller.
enum class SchedPolicy {
  kFairShare,  ///< lowest used-node-seconds / share first (weighted)
  kPriority,   ///< strict priority, FIFO within a priority level
};

const char* to_string(SchedPolicy p);
/// Parse "fair_share" / "priority"; throws std::runtime_error otherwise.
SchedPolicy sched_policy_from_string(const std::string& s);

struct TenantSpec {
  std::string name;
  /// Fair-share weight (> 0): a tenant with twice the share is entitled
  /// to twice the node-seconds before it yields the queue head.
  double share = 1.0;
  /// Per-tenant quota on concurrently running jobs; 0 = unlimited.
  int max_running = 0;
  /// Default strict-priority level for this tenant's jobs.
  int priority = 0;
  /// Per-tenant chaos plan, applied to every job of this tenant and to
  /// no job of any other tenant (the isolation contract).
  fault::FaultPlan faults;
  /// Per-tenant resilience policy (elastic shrink only shrinks this
  /// tenant's ranks — each job runs in its own world).
  resilience::Policy resilience;
};

struct JobSpec {
  std::string name;
  std::string tenant;
  /// Workload class: "tiny" / "medium" / "large" (bench_model problems).
  std::string workload = "tiny";
  /// Backend slot override for jobs without an explicit schedule; ""
  /// keeps the default (or the library artifact's backend on a hit).
  std::string backend;
  /// Strict-priority level; unset inherits the tenant's.
  int priority = 0;
  bool has_priority = false;
  /// Open-loop arrival time on the service clock (virtual seconds).
  double submit_s = 0.0;
  std::uint64_t seed = 2023;
  /// 0 keeps the workload's calibrated default.
  int map_iterations = 0;
  /// Consult the schedule library for a tuned schedule.
  bool tuned = false;
  /// Explicit per-job schedule (wins over `tuned` and `backend`).
  config::ScheduleConfig schedule;
  bool has_schedule = false;
  /// Pipeline drive: staged replay, serial task graph, or overlap.
  mpisim::PipelineRun pipeline = mpisim::PipelineRun::kStaged;
};

struct FleetSpec {
  int nodes = 4;
  int gpus_per_node = 4;
  accel::DeviceSpec device = accel::a100_spec();
  accel::HostSpec host = accel::milan_spec();
  accel::NetworkSpec network = accel::slingshot_spec();
};

struct ServiceSpec {
  SchedPolicy policy = SchedPolicy::kFairShare;
  FleetSpec fleet;
  std::vector<TenantSpec> tenants;
  std::vector<JobSpec> jobs;
  /// Optional "toastcase-schedule-library-v1" index path for `tuned`.
  std::string schedule_library;

  /// Index of a tenant by name, or -1.
  int tenant_index(const std::string& name) const;

  /// Parse a "toastcase-serve-v1" document; throws std::runtime_error
  /// on malformed input or unknown keys at any nesting level.
  static ServiceSpec parse(const std::string& text);
  static ServiceSpec load_file(const std::string& path);
  static ServiceSpec from_value(const obs::json::Value& doc,
                                const std::string& where);
};

/// The bench_model problem for a workload class name; throws
/// std::runtime_error for anything but "tiny" / "medium" / "large".
bench_model::ProblemSize workload_problem(const std::string& name);

}  // namespace toast::serve
