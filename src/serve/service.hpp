#pragma once

// Deterministic multi-tenant job service (docs/MODEL.md §13).
//
// The service runs on its own virtual clock, independent of the
// per-job rank clocks: admission, queueing, packing and completion are
// *events* on the service clock, while each admitted job's scientific
// products come from a standalone mpisim::run_benchmark_job call in a
// fresh ExecContext.  That split is the isolation contract — a job's
// results (maps, TimeLog, fault counters) are bitwise identical to the
// same JobConfig run outside the service, no matter which other
// tenants share the fleet, because nothing of the service state feeds
// the job's execution.
//
// What sharing *does* affect is time: co-resident accelerator jobs on
// a node contend for its GPUs under a processor-sharing fluid model —
// a job's service rate is 1 / (max co-resident accel jobs over its
// nodes), re-evaluated at every event boundary, so its served duration
// stretches relative to the standalone runtime while its products do
// not change.  CPU jobs run at rate 1.
//
// Scheduling is work-conserving and preemption-free: at every event
// the queue is scanned in policy order (fair-share: lowest charged
// node-seconds / share; priority: strict level, FIFO within) and every
// job that fits is started — a job that does not fit is skipped, not a
// barrier, which is exactly backfill.  Fair-share charges a job's full
// expected node-seconds at start time ("charge on start"), so a burst
// from one tenant interleaves with others even inside a single
// scheduling pass.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serve/packer.hpp"
#include "serve/spec.hpp"
#include "tune/library.hpp"

namespace toast::serve {

/// Outcome of one submitted job.
struct ServedJob {
  std::string name;
  std::string tenant;
  std::string workload;
  int priority = 0;
  double submit_s = 0.0;
  double start_s = -1.0;   ///< -1 while queued / rejected
  double finish_s = -1.0;  ///< -1 while running / rejected
  double queue_wait_s = 0.0;
  /// Standalone modelled runtime (the job's own products clock).
  double service_s = 0.0;
  /// Wall duration on the service clock (>= service_s under contention).
  double served_s = 0.0;
  bool admitted = false;
  bool completed = false;
  std::string reject_reason;  ///< non-empty iff rejected at admission
  bool library_hit = false;   ///< `tuned` lookup found an artifact
  std::vector<int> nodes;     ///< fleet nodes the job ran on
  /// Resolved configuration (oracle re-runs compare against this).
  mpisim::JobConfig config;
  /// Standalone result: bitwise what run_benchmark_job(config) returns.
  mpisim::JobResult result;
};

struct TenantStats {
  std::string name;
  double share = 1.0;
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  /// Node-seconds charged to the tenant (charge-on-start accounting).
  double node_seconds = 0.0;
  double max_wait_s = 0.0;
  double sum_wait_s = 0.0;
};

struct ServiceReport {
  SchedPolicy policy = SchedPolicy::kFairShare;
  std::vector<ServedJob> jobs;  ///< submission (spec) order
  std::vector<TenantStats> tenants;
  double makespan_s = 0.0;
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  int library_hits = 0;
  int library_misses = 0;
  /// Node occupancy: node-seconds with >= 1 resident job, over
  /// fleet-nodes * makespan (in [0, 1]).
  double utilization = 0.0;
  /// False if a queued, currently-fitting, quota-eligible job was ever
  /// left idle after a scheduling pass (defensive self-check).
  bool work_conserving = true;
};

class Service {
 public:
  /// Loads the schedule library eagerly when the spec names one.
  explicit Service(ServiceSpec spec);

  /// Run the scenario to completion; deterministic for a given spec.
  ServiceReport run();

  /// Service-level trace (one lane per tenant, one span per served
  /// job); valid after run().
  const obs::Tracer& tracer() const { return tracer_; }
  const tune::ScheduleLibrary& library() const { return library_; }

 private:
  ServiceSpec spec_;
  tune::ScheduleLibrary library_;
  accel::VirtualClock clock_;
  obs::Tracer tracer_{&clock_};
};

/// Resolve a JobSpec into the standalone JobConfig the service runs:
/// explicit schedule > `tuned` library hit > backend override > default,
/// plus the tenant's fault plan / resilience policy and the fleet's
/// device and network specs.
mpisim::JobConfig resolve_job_config(const ServiceSpec& spec,
                                     const JobSpec& job,
                                     const tune::ScheduleLibrary& lib,
                                     bool* library_hit);

/// Bitwise comparison of two job results (runtime decomposition, rank
/// TimeLog, fault/plan counters, degraded kernels, world size); exact
/// double equality — this is the isolation oracle, not a tolerance.
bool results_bitwise_equal(const mpisim::JobResult& a,
                           const mpisim::JobResult& b);

/// Nearest-rank percentile (pct in [0, 100]) of completed jobs' queue
/// waits; 0 when none completed.
double queue_wait_percentile(const ServiceReport& report, double pct);

/// Dump a "toastcase-serve-result-v1" document (every double printed
/// with %.17g, so two runs of the same spec compare bitwise with cmp).
void write_result_json(std::ostream& out, const ServiceReport& report);

}  // namespace toast::serve
