#include "healpix/healpix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace toast::healpix {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kHalfPi = 0.5 * std::numbers::pi;
constexpr double kInvHalfPi = 2.0 / std::numbers::pi;
constexpr double kTwoThird = 2.0 / 3.0;

// Ring offsets of the 12 base faces: jrll is the ring index of the face
// center divided by nside, jpll the longitude index in units of pi/4.
constexpr std::array<int, 12> kJrll = {2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4};
constexpr std::array<int, 12> kJpll = {1, 3, 5, 7, 0, 2, 4, 6, 1, 3, 5, 7};

double fmodulo(double v, double m) {
  const double r = std::fmod(v, m);
  return (r < 0.0) ? r + m : r;
}

std::int64_t isqrt(std::int64_t v) {
  auto r = static_cast<std::int64_t>(
      std::sqrt(static_cast<double>(v) + 0.5));
  // Guard against floating-point over/undershoot.
  while (r * r > v) --r;
  while ((r + 1) * (r + 1) <= v) ++r;
  return r;
}

}  // namespace

std::int64_t npix2nside(std::int64_t npix) {
  if (npix <= 0 || npix % 12 != 0) {
    return 0;
  }
  const auto nside = isqrt(npix / 12);
  if (12 * nside * nside != npix || (nside & (nside - 1)) != 0) {
    return 0;
  }
  return nside;
}

std::uint64_t interleave_bits(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0x00000000FFFFFFFFULL;
    v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
    v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

void deinterleave_bits(std::uint64_t m, std::uint32_t& x, std::uint32_t& y) {
  auto compress = [](std::uint64_t v) {
    v &= 0x5555555555555555ULL;
    v = (v | (v >> 1)) & 0x3333333333333333ULL;
    v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
    v = (v | (v >> 4)) & 0x00FF00FF00FF00FFULL;
    v = (v | (v >> 8)) & 0x0000FFFF0000FFFFULL;
    v = (v | (v >> 16)) & 0x00000000FFFFFFFFULL;
    return static_cast<std::uint32_t>(v);
  };
  x = compress(m);
  y = compress(m >> 1);
}

Healpix::Healpix(std::int64_t nside) : nside_(nside) {
  if (nside < 1 || nside > (std::int64_t{1} << 29) ||
      (nside & (nside - 1)) != 0) {
    throw std::invalid_argument("Healpix: nside must be a power of two");
  }
  order_ = 0;
  while ((std::int64_t{1} << order_) < nside_) ++order_;
  npix_ = 12 * nside_ * nside_;
  ncap_ = 2 * nside_ * (nside_ - 1);
  fact2_ = 4.0 / static_cast<double>(npix_);
  fact1_ = static_cast<double>(nside_ << 1) * fact2_;
}

double Healpix::pixarea() const {
  return 4.0 * kPi / static_cast<double>(npix_);
}

std::int64_t Healpix::zphi2pix_ring(double z, double sth, double phi) const {
  const double za = std::abs(z);
  const double tt = fmodulo(phi * kInvHalfPi, 4.0);  // in [0,4)
  if (za <= kTwoThird) {
    // Equatorial region.
    const double temp1 = static_cast<double>(nside_) * (0.5 + tt);
    const double temp2 = static_cast<double>(nside_) * z * 0.75;
    const auto jp = static_cast<std::int64_t>(temp1 - temp2);
    const auto jm = static_cast<std::int64_t>(temp1 + temp2);
    const std::int64_t ir = nside_ + 1 + jp - jm;  // ring counted from z=2/3
    const std::int64_t kshift = 1 - (ir & 1);
    std::int64_t ip = (jp + jm - nside_ + kshift + 1) / 2;
    ip = ((ip % (4 * nside_)) + 4 * nside_) % (4 * nside_);
    return ncap_ + (ir - 1) * 4 * nside_ + ip;
  }
  // Polar caps.
  const double tp = tt - std::floor(tt);
  const double tmp = (sth >= 0.0)
                         ? static_cast<double>(nside_) * sth *
                               std::sqrt(3.0 / (1.0 + za))
                         : static_cast<double>(nside_) *
                               std::sqrt(3.0 * (1.0 - za));
  const auto jp = static_cast<std::int64_t>(tp * tmp);
  const auto jm = static_cast<std::int64_t>((1.0 - tp) * tmp);
  const std::int64_t ir = jp + jm + 1;  // ring counted from the nearest pole
  auto ip = static_cast<std::int64_t>(tt * static_cast<double>(ir));
  ip = ((ip % (4 * ir)) + 4 * ir) % (4 * ir);
  return (z > 0.0) ? 2 * ir * (ir - 1) + ip : npix_ - 2 * ir * (ir + 1) + ip;
}

std::int64_t Healpix::zphi2pix_nest(double z, double sth, double phi) const {
  const double za = std::abs(z);
  const double tt = fmodulo(phi * kInvHalfPi, 4.0);
  int face = 0;
  std::uint32_t ix = 0, iy = 0;
  if (za <= kTwoThird) {
    const double temp1 = static_cast<double>(nside_) * (0.5 + tt);
    const double temp2 = static_cast<double>(nside_) * z * 0.75;
    const auto jp = static_cast<std::int64_t>(temp1 - temp2);
    const auto jm = static_cast<std::int64_t>(temp1 + temp2);
    const auto ifp = static_cast<int>(jp >> order_);
    const auto ifm = static_cast<int>(jm >> order_);
    if (ifp == ifm) {
      face = (ifp == 4) ? 4 : ifp + 4;
    } else if (ifp < ifm) {
      face = ifp;
    } else {
      face = ifm + 8;
    }
    ix = static_cast<std::uint32_t>(jm & (nside_ - 1));
    iy = static_cast<std::uint32_t>(nside_ - (jp & (nside_ - 1)) - 1);
  } else {
    int ntt = static_cast<int>(tt);
    if (ntt >= 4) ntt = 3;
    const double tp = tt - ntt;
    const double tmp = (sth >= 0.0)
                           ? static_cast<double>(nside_) * sth *
                                 std::sqrt(3.0 / (1.0 + za))
                           : static_cast<double>(nside_) *
                                 std::sqrt(3.0 * (1.0 - za));
    auto jp = static_cast<std::int64_t>(tp * tmp);
    auto jm = static_cast<std::int64_t>((1.0 - tp) * tmp);
    if (jp >= nside_) jp = nside_ - 1;  // points exactly on a boundary
    if (jm >= nside_) jm = nside_ - 1;
    if (z >= 0.0) {
      face = ntt;
      ix = static_cast<std::uint32_t>(nside_ - jm - 1);
      iy = static_cast<std::uint32_t>(nside_ - jp - 1);
    } else {
      face = ntt + 8;
      ix = static_cast<std::uint32_t>(jp);
      iy = static_cast<std::uint32_t>(jm);
    }
  }
  return xyf2nest(ix, iy, face);
}

std::int64_t Healpix::ang2pix_ring(double theta, double phi) const {
  const double z = std::cos(theta);
  const double sth = (std::abs(z) > 0.99) ? std::sin(theta) : -1.0;
  return zphi2pix_ring(z, sth, phi);
}

std::int64_t Healpix::ang2pix_nest(double theta, double phi) const {
  const double z = std::cos(theta);
  const double sth = (std::abs(z) > 0.99) ? std::sin(theta) : -1.0;
  return zphi2pix_nest(z, sth, phi);
}

std::int64_t Healpix::vec2pix_ring(double x, double y, double z) const {
  const double r = std::sqrt(x * x + y * y + z * z);
  const double zn = z / r;
  const double sth =
      (std::abs(zn) > 0.99) ? std::sqrt(x * x + y * y) / r : -1.0;
  return zphi2pix_ring(zn, sth, std::atan2(y, x));
}

std::int64_t Healpix::vec2pix_nest(double x, double y, double z) const {
  const double r = std::sqrt(x * x + y * y + z * z);
  const double zn = z / r;
  const double sth =
      (std::abs(zn) > 0.99) ? std::sqrt(x * x + y * y) / r : -1.0;
  return zphi2pix_nest(zn, sth, std::atan2(y, x));
}

std::int64_t Healpix::xyf2nest(std::uint32_t x, std::uint32_t y,
                               int face) const {
  return (static_cast<std::int64_t>(face) << (2 * order_)) +
         static_cast<std::int64_t>(interleave_bits(x, y));
}

void Healpix::nest2xyf(std::int64_t pix, std::uint32_t& x, std::uint32_t& y,
                       int& face) const {
  face = static_cast<int>(pix >> (2 * order_));
  deinterleave_bits(
      static_cast<std::uint64_t>(pix & ((std::int64_t{1} << (2 * order_)) - 1)),
      x, y);
}

void Healpix::pix2ang_nest(std::int64_t pix, double& theta,
                           double& phi) const {
  std::uint32_t ix = 0, iy = 0;
  int face = 0;
  nest2xyf(pix, ix, iy, face);
  const std::int64_t jr =
      (static_cast<std::int64_t>(kJrll[face]) << order_) - ix - iy - 1;
  double z = 0.0;
  std::int64_t nr = 0;
  if (jr < nside_) {
    nr = jr;
    z = 1.0 - static_cast<double>(nr * nr) * fact2_;
  } else if (jr > 3 * nside_) {
    nr = 4 * nside_ - jr;
    z = static_cast<double>(nr * nr) * fact2_ - 1.0;
  } else {
    nr = nside_;
    z = static_cast<double>(2 * nside_ - jr) * fact1_;
  }
  std::int64_t tmp = static_cast<std::int64_t>(kJpll[face]) * nr + ix - iy;
  if (tmp < 0) tmp += 8 * nr;
  theta = std::acos(std::clamp(z, -1.0, 1.0));
  phi = (kPi / 4.0) * static_cast<double>(tmp) / static_cast<double>(nr);
}

void Healpix::pix2ang_ring(std::int64_t pix, double& theta,
                           double& phi) const {
  double z = 0.0;
  if (pix < ncap_) {
    // North polar cap.
    const std::int64_t iring = (1 + isqrt(1 + 2 * pix)) / 2;
    const std::int64_t iphi = (pix + 1) - 2 * iring * (iring - 1);
    z = 1.0 - static_cast<double>(iring * iring) * fact2_;
    phi = (static_cast<double>(iphi) - 0.5) * kHalfPi /
          static_cast<double>(iring);
  } else if (pix < npix_ - ncap_) {
    // Equatorial belt.
    const std::int64_t ip = pix - ncap_;
    const std::int64_t iring = ip / (4 * nside_) + nside_;
    const std::int64_t iphi = ip % (4 * nside_) + 1;
    const double fodd = ((iring + nside_) & 1) ? 1.0 : 0.5;
    z = static_cast<double>(2 * nside_ - iring) * fact1_;
    phi = (static_cast<double>(iphi) - fodd) * kPi /
          static_cast<double>(2 * nside_);
  } else {
    // South polar cap.
    const std::int64_t ip = npix_ - pix;
    const std::int64_t iring = (1 + isqrt(2 * ip - 1)) / 2;
    const std::int64_t iphi = 4 * iring + 1 - (ip - 2 * iring * (iring - 1));
    z = -1.0 + static_cast<double>(iring * iring) * fact2_;
    phi = (static_cast<double>(iphi) - 0.5) * kHalfPi /
          static_cast<double>(iring);
  }
  theta = std::acos(std::clamp(z, -1.0, 1.0));
}

std::int64_t Healpix::xyf2ring(std::uint32_t x, std::uint32_t y,
                               int face) const {
  const std::int64_t nl4 = 4 * nside_;
  const std::int64_t jr =
      static_cast<std::int64_t>(kJrll[face]) * nside_ - x - y - 1;
  std::int64_t nr = 0, n_before = 0, kshift = 0;
  if (jr < nside_) {
    nr = jr;
    n_before = 2 * nr * (nr - 1);
    kshift = 0;
  } else if (jr > 3 * nside_) {
    nr = nl4 - jr;
    n_before = npix_ - 2 * (nr + 1) * nr;
    kshift = 0;
  } else {
    nr = nside_;
    n_before = ncap_ + (jr - nside_) * nl4;
    kshift = (jr - nside_) & 1;
  }
  std::int64_t jp =
      (static_cast<std::int64_t>(kJpll[face]) * nr + x - y + 1 + kshift) / 2;
  if (jp > nl4) {
    jp -= nl4;
  } else if (jp < 1) {
    jp += nl4;
  }
  return n_before + jp - 1;
}

void Healpix::ring2xyf(std::int64_t pix, std::uint32_t& x, std::uint32_t& y,
                       int& face) const {
  std::int64_t iring = 0, iphi = 0, kshift = 0, nr = 0;
  const std::int64_t nl2 = 2 * nside_;
  if (pix < ncap_) {
    iring = (1 + isqrt(1 + 2 * pix)) / 2;
    iphi = (pix + 1) - 2 * iring * (iring - 1);
    kshift = 0;
    nr = iring;
    face = 0;
    std::int64_t tmp = iphi - 1;
    if (tmp >= 2 * iring) {
      face = 2;
      tmp -= 2 * iring;
    }
    if (tmp >= iring) ++face;
  } else if (pix < npix_ - ncap_) {
    const std::int64_t ip = pix - ncap_;
    iring = (ip >> (order_ + 2)) + nside_;
    iphi = (ip & (4 * nside_ - 1)) + 1;
    kshift = (iring + nside_) & 1;
    nr = nside_;
    const std::int64_t ire = iring - nside_ + 1;
    const std::int64_t irm = nl2 + 2 - ire;
    const std::int64_t ifm = (iphi - ire / 2 + nside_ - 1) >> order_;
    const std::int64_t ifp = (iphi - irm / 2 + nside_ - 1) >> order_;
    if (ifp == ifm) {
      face = static_cast<int>((ifp == 4) ? 4 : ifp + 4);
    } else if (ifp < ifm) {
      face = static_cast<int>(ifp);
    } else {
      face = static_cast<int>(ifm + 8);
    }
  } else {
    const std::int64_t ip = npix_ - pix;
    iring = (1 + isqrt(2 * ip - 1)) / 2;
    iphi = 4 * iring + 1 - (ip - 2 * iring * (iring - 1));
    kshift = 0;
    nr = iring;
    iring = 2 * nl2 - iring;
    face = 8;
    std::int64_t tmp = iphi - 1;
    if (tmp >= 2 * nr) {
      face = 10;
      tmp -= 2 * nr;
    }
    if (tmp >= nr) ++face;
  }
  const std::int64_t irt =
      iring - static_cast<std::int64_t>(kJrll[face]) * nside_ + 1;
  std::int64_t ipt =
      2 * iphi - static_cast<std::int64_t>(kJpll[face]) * nr - kshift - 1;
  if (ipt >= nl2) ipt -= 8 * nside_;
  x = static_cast<std::uint32_t>((ipt - irt) >> 1);
  y = static_cast<std::uint32_t>((-(ipt + irt)) >> 1);
}

void Healpix::pix2vec_ring(std::int64_t pix, double& x, double& y,
                           double& z) const {
  double theta = 0.0, phi = 0.0;
  pix2ang_ring(pix, theta, phi);
  const double st = std::sin(theta);
  x = st * std::cos(phi);
  y = st * std::sin(phi);
  z = std::cos(theta);
}

void Healpix::pix2vec_nest(std::int64_t pix, double& x, double& y,
                           double& z) const {
  double theta = 0.0, phi = 0.0;
  pix2ang_nest(pix, theta, phi);
  const double st = std::sin(theta);
  x = st * std::cos(phi);
  y = st * std::sin(phi);
  z = std::cos(theta);
}

std::int64_t Healpix::nest2ring(std::int64_t pix) const {
  std::uint32_t x = 0, y = 0;
  int face = 0;
  nest2xyf(pix, x, y, face);
  return xyf2ring(x, y, face);
}

std::int64_t Healpix::ring2nest(std::int64_t pix) const {
  std::uint32_t x = 0, y = 0;
  int face = 0;
  ring2xyf(pix, x, y, face);
  return xyf2nest(x, y, face);
}

}  // namespace toast::healpix
