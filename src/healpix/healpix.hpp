#pragma once

// HEALPix sphere pixelization (Gorski et al. 2005), implemented from the
// published geometry.  Supports the RING and NESTED schemes for the
// operations TOAST's pointing kernels need: angle/vector -> pixel, pixel ->
// angle (for map synthesis and tests), and scheme conversion.
//
// This is deliberately the full branchy equatorial/polar-cap logic: the
// paper singles out pixels_healpix as the kernel whose many branches hurt
// GPU performance, so the reproduction needs the genuine control flow.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace toast::healpix {

/// Recover NSIDE from a pixel count (returns 0 if npix is not a valid
/// HEALPix pixel count).
std::int64_t npix2nside(std::int64_t npix);

/// Interleave the lower 32 bits of x and y (Morton/Z-order): result bit 2i
/// is x bit i, bit 2i+1 is y bit i.
std::uint64_t interleave_bits(std::uint32_t x, std::uint32_t y);

/// Inverse of interleave_bits.
void deinterleave_bits(std::uint64_t m, std::uint32_t& x, std::uint32_t& y);

/// Geometry for one NSIDE.  NSIDE must be a power of two (required by the
/// NESTED scheme), between 1 and 2^29.
class Healpix {
 public:
  explicit Healpix(std::int64_t nside);

  std::int64_t nside() const { return nside_; }
  std::int64_t npix() const { return npix_; }
  /// Pixels in each polar cap.
  std::int64_t ncap() const { return ncap_; }
  /// Number of rings (4*nside - 1).
  std::int64_t nrings() const { return 4 * nside_ - 1; }
  /// Solid angle per pixel (steradians); all HEALPix pixels are equal-area.
  double pixarea() const;

  /// ISO angles (theta = colatitude in [0, pi], phi = longitude) to pixel.
  std::int64_t ang2pix_ring(double theta, double phi) const;
  std::int64_t ang2pix_nest(double theta, double phi) const;

  /// Unit-vector variants (the form the pointing kernel uses).
  std::int64_t vec2pix_ring(double x, double y, double z) const;
  std::int64_t vec2pix_nest(double x, double y, double z) const;

  /// Pixel-center angles.
  void pix2ang_ring(std::int64_t pix, double& theta, double& phi) const;
  void pix2ang_nest(std::int64_t pix, double& theta, double& phi) const;

  /// Pixel-center unit vectors.
  void pix2vec_ring(std::int64_t pix, double& x, double& y, double& z) const;
  void pix2vec_nest(std::int64_t pix, double& x, double& y, double& z) const;

  /// Scheme conversion.
  std::int64_t nest2ring(std::int64_t pix) const;
  std::int64_t ring2nest(std::int64_t pix) const;

  /// Decompose a NESTED pixel into (face, x, y); face in [0, 12).
  void nest2xyf(std::int64_t pix, std::uint32_t& x, std::uint32_t& y,
                int& face) const;
  std::int64_t xyf2nest(std::uint32_t x, std::uint32_t y, int face) const;

 private:
  // Shared core: (z, sin(theta) or <0 if unknown, phi) -> pixel.
  std::int64_t zphi2pix_ring(double z, double sth, double phi) const;
  std::int64_t zphi2pix_nest(double z, double sth, double phi) const;
  void ring2xyf(std::int64_t pix, std::uint32_t& x, std::uint32_t& y,
                int& face) const;
  std::int64_t xyf2ring(std::uint32_t x, std::uint32_t y, int face) const;

  std::int64_t nside_;
  int order_;  // log2(nside)
  std::int64_t npix_;
  std::int64_t ncap_;
  double fact1_;  // (4/3) / nside    : equatorial-ring z spacing helper
  double fact2_;  // 4 / npix
};

}  // namespace toast::healpix
