#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/json.hpp"
#include "resilience/manager.hpp"

namespace toast::fault {

namespace {

// Counter-based RNG: hash the (seed, kind, site, visit-counter) tuple to
// a uniform double.  No stateful engine means the draw for a given site
// visit is independent of what any other hook drew before it.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTransfer:
      return "transfer";
    case FaultKind::kLaunch:
      return "launch";
    case FaultKind::kDeviceOom:
      return "oom";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kRankFailure:
      return "rank";
    case FaultKind::kLinkDegrade:
      return "link";
    case FaultKind::kChunkLoss:
      return "chunk";
  }
  return "unknown";
}

FaultKind kind_from_string(const std::string& s) {
  if (s == "transfer") return FaultKind::kTransfer;
  if (s == "launch") return FaultKind::kLaunch;
  if (s == "oom") return FaultKind::kDeviceOom;
  if (s == "straggler") return FaultKind::kStraggler;
  if (s == "rank") return FaultKind::kRankFailure;
  if (s == "link") return FaultKind::kLinkDegrade;
  if (s == "chunk") return FaultKind::kChunkLoss;
  throw std::runtime_error("unknown fault kind: " + s);
}

namespace {

// Strict-key check: a typo like "max_fire" must be an error, not a
// silently applied default.
void reject_unknown_keys(const obs::json::Value& v, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, member] : v.object) {
    (void)member;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
}

FaultPlan plan_from_value(const obs::json::Value& doc,
                          const std::string& where) {
  if (!doc.is_object()) {
    throw std::runtime_error(where + ": fault plan must be an object");
  }
  const obs::json::Value* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "toastcase-fault-plan-v1") {
    throw std::runtime_error(where +
                             ": expected schema toastcase-fault-plan-v1");
  }
  reject_unknown_keys(doc, where, {"schema", "seed", "retry", "rules"});
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(doc.number_or("seed", 0.0));
  if (const obs::json::Value* retry = doc.find("retry")) {
    reject_unknown_keys(*retry, where + ": retry",
                        {"max_attempts", "backoff_seconds",
                         "backoff_multiplier", "failed_fraction"});
    plan.retry.max_attempts =
        static_cast<int>(retry->number_or("max_attempts", 3.0));
    plan.retry.backoff_seconds = retry->number_or("backoff_seconds", 1e-4);
    plan.retry.backoff_multiplier =
        retry->number_or("backoff_multiplier", 2.0);
    plan.retry.failed_fraction = retry->number_or("failed_fraction", 0.5);
  }
  if (const obs::json::Value* rules = doc.find("rules")) {
    for (const obs::json::Value& r : rules->array) {
      reject_unknown_keys(r, where + ": rule",
                          {"kind", "site", "probability", "max_fires",
                           "factor", "pressure_threshold"});
      FaultRule rule;
      rule.kind = kind_from_string(r.at("kind").string);
      if (const obs::json::Value* site = r.find("site")) {
        rule.site = site->string;
      }
      rule.probability = r.number_or("probability", 0.0);
      rule.max_fires = static_cast<int>(r.number_or("max_fires", -1.0));
      rule.factor = r.number_or("factor", 2.0);
      rule.pressure_threshold = r.number_or("pressure_threshold", 0.0);
      plan.rules.push_back(std::move(rule));
    }
  }
  return plan;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  return plan_from_value(obs::json::Value::parse(text), "fault plan");
}

FaultPlan FaultPlan::load_file(const std::string& path) {
  return plan_from_value(obs::json::load_file(path), path);
}

FaultPlan FaultPlan::from_value(const obs::json::Value& doc,
                                const std::string& where) {
  return plan_from_value(doc, where);
}

PersistentFaultError::PersistentFaultError(FaultKind kind, std::string site,
                                           int failures)
    : std::runtime_error("persistent " + std::string(to_string(kind)) +
                         " fault at " + site + " after " +
                         std::to_string(failures) + " attempts"),
      kind_(kind),
      site_(std::move(site)),
      failures_(failures) {}

FaultInjector::FaultInjector(FaultPlan plan, accel::VirtualClock* clock,
                             obs::Tracer* tracer)
    : plan_(std::move(plan)),
      clock_(clock),
      tracer_(tracer),
      armed_(!plan_.rules.empty()),
      rule_fires_(plan_.rules.size(), 0) {}

double FaultInjector::draw(FaultKind kind, const std::string& site) {
  const std::string key = std::string(to_string(kind)) + "@" + site;
  const std::uint64_t n = draw_counts_[key]++;
  const std::uint64_t h =
      splitmix64(plan_.seed ^ splitmix64(static_cast<std::uint64_t>(kind) + 1) ^
                 fnv1a(key) ^ splitmix64(n));
  return uniform01(h);
}

int FaultInjector::match(FaultKind kind, const std::string& site) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (r.kind != kind || r.probability <= 0.0) {
      continue;
    }
    if (!r.site.empty() && site.find(r.site) == std::string::npos) {
      continue;
    }
    if (r.max_fires >= 0 && rule_fires_[i] >= r.max_fires) {
      continue;
    }
    return static_cast<int>(i);
  }
  return -1;
}

namespace {

double backoff_of(const RetryPolicy& rp, int attempt) {
  return rp.backoff_seconds * std::pow(rp.backoff_multiplier, attempt);
}

}  // namespace

double FaultInjector::backoff(int attempt) const {
  return backoff_of(plan_.retry, attempt);
}

RetryPolicy FaultInjector::retry_for(const std::string& site) const {
  RetryPolicy rp = plan_.retry;
  if (resilience_ == nullptr || !resilience_->armed()) {
    return rp;
  }
  resilience::RetrySpec fallback;
  fallback.max_attempts = rp.max_attempts;
  fallback.backoff_seconds = rp.backoff_seconds;
  fallback.backoff_multiplier = rp.backoff_multiplier;
  fallback.failed_fraction = rp.failed_fraction;
  const resilience::RetrySpec eff = resilience_->retry_for(site, fallback);
  rp.max_attempts = eff.max_attempts;
  rp.backoff_seconds = eff.backoff_seconds;
  rp.backoff_multiplier = eff.backoff_multiplier;
  rp.failed_fraction = eff.failed_fraction;
  return rp;
}

int FaultInjector::attempt_sync(FaultKind kind, const std::string& site,
                                double op_seconds) {
  if (!armed_) {
    return 0;
  }
  ProbeResult r = probe(kind, site, op_seconds);
  if (r.failures > 0) {
    if (clock_ != nullptr) {
      clock_->advance(r.penalty);
    }
    if (tracer_ != nullptr) {
      const obs::SpanId id =
          tracer_->record(std::string("fault_retry_") + to_string(kind),
                          "fault", r.penalty);
      tracer_->add_counter(id, "failures", r.failures);
    }
    add_count(std::string("fault_") + to_string(kind) + "_retries",
              r.failures);
  }
  // A breaker fast-fail is persistent with zero failures (no attempts,
  // no penalty) — it must still throw, not silently run the op.
  if (r.persistent) {
    add_count("fault_persistent");
    throw PersistentFaultError(kind, site, r.failures);
  }
  return r.failures;
}

ProbeResult FaultInjector::probe(FaultKind kind, const std::string& site,
                                 double op_seconds) {
  ProbeResult result;
  if (!armed_) {
    return result;
  }
  const bool managed = resilience_ != nullptr && resilience_->armed();
  if (managed && !resilience_->admit(site)) {
    // Breaker open: fail fast without attempting (zero penalty, zero
    // draws — the cool-down is virtual-clock time, not retry work).
    result.persistent = true;
    return result;
  }
  const RetryPolicy rp = managed ? retry_for(site) : plan_.retry;
  const double deadline = managed ? resilience_->deadline_for(site) : 0.0;
  const int max_attempts = std::max(1, rp.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const int rule = match(kind, site);
    if (rule < 0) {
      if (managed) {
        resilience_->on_success(site);
      }
      return result;
    }
    if (draw(kind, site) >= plan_.rules[rule].probability) {
      if (managed) {
        resilience_->on_success(site);
      }
      return result;
    }
    ++rule_fires_[rule];
    ++result.failures;
    result.penalty += rp.failed_fraction * op_seconds + backoff_of(rp, attempt);
    if (managed) {
      resilience_->on_failure(site);
    }
    if (deadline > 0.0 && result.penalty >= deadline) {
      result.persistent = true;
      resilience_->note_deadline_exceeded(site, result.penalty);
      return result;
    }
  }
  result.persistent = true;
  return result;
}

double FaultInjector::straggler_factor(const std::string& site) {
  if (!armed_) {
    return 1.0;
  }
  const int rule = match(FaultKind::kStraggler, site);
  if (rule < 0) {
    return 1.0;
  }
  if (draw(FaultKind::kStraggler, site) >= plan_.rules[rule].probability) {
    return 1.0;
  }
  ++rule_fires_[rule];
  add_count("fault_stragglers");
  return std::max(1.0, plan_.rules[rule].factor);
}

double FaultInjector::link_degrade_factor(const std::string& site) {
  if (!armed_) {
    return 1.0;
  }
  const int rule = match(FaultKind::kLinkDegrade, site);
  if (rule < 0) {
    return 1.0;
  }
  if (draw(FaultKind::kLinkDegrade, site) >= plan_.rules[rule].probability) {
    return 1.0;
  }
  ++rule_fires_[rule];
  add_count("fault_link_degrades");
  return std::max(1.0, plan_.rules[rule].factor);
}

ProbeResult FaultInjector::chunk_loss(const std::string& site,
                                      double op_seconds) {
  return probe(FaultKind::kChunkLoss, site, op_seconds);
}

bool FaultInjector::rank_failure(const std::string& site) {
  if (!armed_) {
    return false;
  }
  const int rule = match(FaultKind::kRankFailure, site);
  if (rule < 0) {
    return false;
  }
  if (draw(FaultKind::kRankFailure, site) >= plan_.rules[rule].probability) {
    return false;
  }
  ++rule_fires_[rule];
  add_count("fault_rank_failures");
  return true;
}

bool FaultInjector::oom_should_fire(const char* site, std::size_t requested,
                                    std::size_t in_use,
                                    std::size_t capacity) {
  if (!armed_) {
    return false;
  }
  const std::string site_name = site != nullptr ? site : "";
  const int rule = match(FaultKind::kDeviceOom, site_name);
  if (rule < 0) {
    return false;
  }
  const double pressure =
      capacity > 0
          ? static_cast<double>(in_use + requested) /
                static_cast<double>(capacity)
          : 1.0;
  if (pressure < plan_.rules[rule].pressure_threshold) {
    return false;
  }
  if (draw(FaultKind::kDeviceOom, site_name) >=
      plan_.rules[rule].probability) {
    return false;
  }
  ++rule_fires_[rule];
  add_count("fault_oom_injected");
  return true;
}

bool FaultInjector::on_oom(const std::string& site,
                           const accel::DeviceOomError& e, int attempt) {
  if (!armed_ || !e.info().injected) {
    return false;  // real capacity overflow: retry is pointless
  }
  const RetryPolicy rp = retry_for(site);
  if (attempt + 1 >= std::max(1, rp.max_attempts)) {
    add_count("fault_persistent");
    return false;
  }
  const double penalty = backoff_of(rp, attempt);
  if (clock_ != nullptr) {
    clock_->advance(penalty);
  }
  if (tracer_ != nullptr) {
    const obs::SpanId id = tracer_->record("fault_retry_oom", "fault", penalty);
    tracer_->add_counter(id, "site_" + site, 1.0);
  }
  add_count("fault_oom_retries");
  return true;
}

void FaultInjector::note_fallback(const std::string& kernel,
                                  const std::string& reason) {
  mark_degraded(kernel);
  add_count("fault_fallbacks");
  if (tracer_ != nullptr) {
    const obs::SpanId id = tracer_->record("fault_fallback", "fault", 0.0);
    tracer_->add_counter(id, "kernel_" + kernel, 1.0);
    tracer_->add_counter(id, "reason_" + reason, 1.0);
  }
}

void FaultInjector::note_replan(const std::string& kernel) {
  if (!armed_) {
    return;
  }
  add_count("fault_plan_replans");
  if (tracer_ != nullptr && clock_ != nullptr) {
    const obs::SpanId id =
        tracer_->record_at("fault_plan_replan", "fault", clock_->now(), 0.0,
                           /*backend=*/{}, nullptr, /*logged=*/false);
    tracer_->add_counter(id, "kernel_" + kernel, 1.0);
  }
}

void FaultInjector::note_oom_recovery(const std::string& site,
                                      double seconds) {
  add_count("fault_oom_recoveries");
  if (clock_ != nullptr) {
    clock_->advance(seconds);
  }
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("fault_oom_recovery", "fault", seconds);
    tracer_->add_counter(id, "site_" + site, 1.0);
  }
}

void FaultInjector::note_checkpoint_restore(const std::string& site,
                                            int iteration) {
  add_count("fault_checkpoint_restores");
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("fault_checkpoint_restore", "fault", 0.0);
    tracer_->add_counter(id, "site_" + site, 1.0);
    tracer_->add_counter(id, "iteration", iteration);
  }
}

void FaultInjector::note_straggler(const std::string& site, double start,
                                   double extra_seconds) {
  if (tracer_ != nullptr) {
    const obs::SpanId id = tracer_->record_at("fault_straggler", "fault",
                                              start, extra_seconds);
    tracer_->add_counter(id, "site_" + site, 1.0);
  }
}

void FaultInjector::note_async_retries(FaultKind kind,
                                       const std::string& site, double start,
                                       const ProbeResult& r) {
  if (r.failures == 0) {
    return;
  }
  add_count(std::string("fault_") + to_string(kind) + "_retries",
            r.failures);
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record_at(std::string("fault_retry_") + to_string(kind),
                           "fault", start, r.penalty);
    tracer_->add_counter(id, "failures", r.failures);
    tracer_->add_counter(id, "site_" + site, 1.0);
  }
  if (r.persistent) {
    add_count("fault_persistent");
  }
}

void FaultInjector::note_task_requeue(const std::string& site, int count) {
  if (count <= 0) {
    return;
  }
  add_count("fault_task_requeues", count);
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("fault_task_requeue", "fault", 0.0);
    tracer_->add_counter(id, "site_" + site, 1.0);
    tracer_->add_counter(id, "tasks", count);
  }
}

}  // namespace toast::fault
