#pragma once

// Deterministic fault injection + recovery policies for the simulated
// stack (ROADMAP: "handle as many scenarios as you can imagine").
//
// A FaultPlan schedules injectable faults — transient transfer failures,
// kernel-launch failures, device OOM under memory pressure, stream
// straggler slowdowns, simulated rank failures — at hook points in
// SimDevice, the sched:: engines, omptarget::Runtime, the xla executor
// and mpisim/job.  The FaultInjector draws from a counter-based RNG
// (splitmix64 over the plan seed, the fault kind, the site name and a
// per-site counter), so the same seed produces the same firing pattern
// regardless of wall time or thread interleaving, and the same seed run
// twice yields bit-identical results *and* timings.
//
// Recovery is charged honestly to the virtual clock: every retry's
// wasted work and backoff becomes a logged `fault_*` span, so faults
// show up in traces, TimeLog aggregation and the metrics JSON exactly
// like any other cost.  An empty plan leaves the injector disarmed and
// every hook is a no-op — zero-fault runs are bit-for-bit identical to
// a build without the fault layer.

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/fault_hook.hpp"
#include "accel/sim_device.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace toast::resilience {
class Manager;
}

namespace toast::fault {

enum class FaultKind {
  kTransfer,     ///< transient PCIe transfer failure
  kLaunch,       ///< kernel launch failure
  kDeviceOom,    ///< allocation failure under memory pressure
  kStraggler,    ///< stream op slowdown (multiplicative)
  kRankFailure,  ///< simulated rank death in mpisim
  kLinkDegrade,  ///< comm-engine link slowdown (multiplicative)
  kChunkLoss,    ///< comm-engine lost chunk (retransmit with backoff)
};

const char* to_string(FaultKind k);
/// Parse "transfer" / "launch" / "oom" / "straggler" / "rank" / "link" /
/// "chunk"; throws std::runtime_error on anything else.
FaultKind kind_from_string(const std::string& s);

/// One scheduled fault: fires with `probability` at every matching site
/// visit (deterministically, from the plan seed).
struct FaultRule {
  FaultKind kind = FaultKind::kTransfer;
  /// Substring matched against the hook site name; empty matches all.
  std::string site;
  double probability = 0.0;
  /// Stop firing after this many fires; -1 = unbounded.
  int max_fires = -1;
  /// Straggler rules: multiplicative slowdown of the op (>= 1).
  double factor = 2.0;
  /// OOM rules: only fire when (in_use + requested) / capacity reaches
  /// this fraction (0 = fire regardless of pressure).
  double pressure_threshold = 0.0;
};

/// Bounded retry with exponential backoff.  A failed attempt wastes
/// `failed_fraction` of the op's cost plus the current backoff, all
/// charged to the virtual clock.
struct RetryPolicy {
  int max_attempts = 3;
  double backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double failed_fraction = 0.5;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  RetryPolicy retry;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Parse a "toastcase-fault-plan-v1" document; throws on malformed
  /// input or unknown fault kinds.
  static FaultPlan parse(const std::string& text);
  static FaultPlan load_file(const std::string& path);
  /// Parse an already-decoded JSON value (e.g. a plan nested inside a
  /// larger document); `where` prefixes every error message.
  static FaultPlan from_value(const obs::json::Value& doc,
                              const std::string& where);
};

/// Thrown when the retry budget for an op is exhausted; the pipeline
/// catches it and degrades the kernel to its CPU implementation.
class PersistentFaultError : public std::runtime_error {
 public:
  PersistentFaultError(FaultKind kind, std::string site, int failures);
  FaultKind kind() const { return kind_; }
  const std::string& site() const { return site_; }
  int failures() const { return failures_; }

 private:
  FaultKind kind_;
  std::string site_;
  int failures_;
};

/// Result of an async fault probe: the scheduler places the penalty
/// interval itself (no clock side effects here).
struct ProbeResult {
  int failures = 0;
  double penalty = 0.0;
  bool persistent = false;
};

class FaultInjector final : public accel::FaultHook {
 public:
  FaultInjector() = default;
  FaultInjector(FaultPlan plan, accel::VirtualClock* clock,
                obs::Tracer* tracer);

  /// False for an empty plan: every hook returns immediately without
  /// touching the clock, the tracer or any counter.
  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Attach a resilience policy manager.  An armed manager overrides the
  /// plan's global retry budget per site, gates attempts through circuit
  /// breakers and enforces retry-penalty deadlines; a disarmed (or null)
  /// manager leaves every draw and charge bit-for-bit unchanged.
  void set_resilience(resilience::Manager* manager) {
    resilience_ = manager;
  }
  resilience::Manager* resilience() const { return resilience_; }

  // --- synchronous attempt (blocking ops) ---------------------------------

  /// Draw for `kind` at `site` before a blocking op that would cost
  /// `op_seconds`.  Each failed attempt charges wasted work + backoff to
  /// the virtual clock and emits a logged `fault_retry_<kind>` span;
  /// throws PersistentFaultError when the retry budget is exhausted.
  /// Returns the number of failed attempts (0 = clean first try).
  int attempt_sync(FaultKind kind, const std::string& site,
                   double op_seconds);

  // --- async probe (stream-scheduled ops) ---------------------------------

  /// Same draw sequence as attempt_sync but with no side effects: the
  /// caller places `penalty` seconds ahead of the op on its stream and
  /// emits the fault span at that interval.  `persistent` means the
  /// retry budget is exhausted and the op should not run.
  ProbeResult probe(FaultKind kind, const std::string& site,
                    double op_seconds);

  /// Multiplicative slowdown for the stream op at `site` (1.0 = none).
  double straggler_factor(const std::string& site);

  /// Multiplicative wire-time slowdown for the comm-engine link step at
  /// `site` (1.0 = none) — the straggler draw on kLinkDegrade rules.
  double link_degrade_factor(const std::string& site);

  /// Lost-chunk probe for a comm-engine step: same retry accounting as
  /// probe(); the engine places the penalty ahead of the step on its NIC
  /// lanes (a lost chunk is re-sent on the same wire).
  ProbeResult chunk_loss(const std::string& site, double op_seconds);

  /// Rank-failure draw for mpisim (true = this rank dies here).
  bool rank_failure(const std::string& site);

  // --- accel::FaultHook ----------------------------------------------------

  bool oom_should_fire(const char* site, std::size_t requested,
                       std::size_t in_use, std::size_t capacity) override;

  /// Recovery decision after a DeviceOomError: injected faults are worth
  /// retrying (charges backoff for `attempt`, returns true) until the
  /// retry budget runs out; real capacity overflows return false.
  bool on_oom(const std::string& site, const accel::DeviceOomError& e,
              int attempt);

  // --- recovery event notes ------------------------------------------------

  /// A kernel degraded to its CPU implementation (pipeline fallback).
  void note_fallback(const std::string& kernel, const std::string& reason);
  /// A cached ExecutionPlan group was patched to its host fallback because
  /// `kernel` is degraded (the plan-level view of recovery).  Trace-only:
  /// no clock charge, so planned fault runs stay bit-for-bit equal to the
  /// interpreter.
  void note_replan(const std::string& kernel);
  /// The omptarget pool shrank + re-staged instead of aborting.
  void note_oom_recovery(const std::string& site, double seconds);
  /// The destriper restored a checkpoint after a mid-solve failure.
  void note_checkpoint_restore(const std::string& site, int iteration);
  /// A straggler stretched a stream op by `extra_seconds` at `start`.
  void note_straggler(const std::string& site, double start,
                      double extra_seconds);
  /// Async retries placed by a scheduler at [start, start+penalty].
  void note_async_retries(FaultKind kind, const std::string& site,
                          double start, const ProbeResult& r);
  /// A recovery rolled back `count` in-flight async tasks, which were
  /// re-enqueued for replay (task-graph runtime).  Trace-only.
  void note_task_requeue(const std::string& site, int count);

  // --- degradation bookkeeping --------------------------------------------

  bool degraded(const std::string& kernel) const {
    return degraded_.count(kernel) != 0;
  }
  void mark_degraded(const std::string& kernel) { degraded_.insert(kernel); }
  const std::set<std::string>& degraded_kernels() const { return degraded_; }

  // --- counters ------------------------------------------------------------

  /// Flat fault counters for metrics JSON ("fault_transfer_retries",
  /// "fault_fallbacks", ...).  Empty when nothing fired.
  const std::map<std::string, double>& counters() const { return counters_; }
  void add_count(const std::string& key, double v = 1.0) {
    counters_[key] += v;
  }

 private:
  /// Deterministic uniform [0, 1) draw for (kind, site); advances the
  /// per-(kind, site) counter.
  double draw(FaultKind kind, const std::string& site);
  /// First armed rule matching (kind, site) with fires remaining, or -1.
  int match(FaultKind kind, const std::string& site);
  /// The effective retry policy for `site`: the plan's global policy,
  /// overridden per site when an armed resilience manager declares one.
  RetryPolicy retry_for(const std::string& site) const;
  double backoff(int attempt) const;

  FaultPlan plan_;
  accel::VirtualClock* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  resilience::Manager* resilience_ = nullptr;
  bool armed_ = false;
  std::map<std::string, std::uint64_t> draw_counts_;
  std::vector<int> rule_fires_;
  std::set<std::string> degraded_;
  std::map<std::string, double> counters_;
};

}  // namespace toast::fault
