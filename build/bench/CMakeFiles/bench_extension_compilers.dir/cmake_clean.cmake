file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_compilers.dir/bench_extension_compilers.cpp.o"
  "CMakeFiles/bench_extension_compilers.dir/bench_extension_compilers.cpp.o.d"
  "bench_extension_compilers"
  "bench_extension_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
