file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_full_benchmark.dir/bench_fig5_full_benchmark.cpp.o"
  "CMakeFiles/bench_fig5_full_benchmark.dir/bench_fig5_full_benchmark.cpp.o.d"
  "bench_fig5_full_benchmark"
  "bench_fig5_full_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_full_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
