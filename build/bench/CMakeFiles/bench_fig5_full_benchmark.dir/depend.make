# Empty dependencies file for bench_fig5_full_benchmark.
# This may be replaced when dependencies are built.
