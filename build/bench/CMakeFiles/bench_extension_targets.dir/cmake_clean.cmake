file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_targets.dir/bench_extension_targets.cpp.o"
  "CMakeFiles/bench_extension_targets.dir/bench_extension_targets.cpp.o.d"
  "bench_extension_targets"
  "bench_extension_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
