# Empty compiler generated dependencies file for bench_extension_targets.
# This may be replaced when dependencies are built.
