file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_loc_kernel.dir/bench_fig3_loc_kernel.cpp.o"
  "CMakeFiles/bench_fig3_loc_kernel.dir/bench_fig3_loc_kernel.cpp.o.d"
  "bench_fig3_loc_kernel"
  "bench_fig3_loc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_loc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
