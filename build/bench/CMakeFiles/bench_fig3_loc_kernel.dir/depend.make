# Empty dependencies file for bench_fig3_loc_kernel.
# This may be replaced when dependencies are built.
