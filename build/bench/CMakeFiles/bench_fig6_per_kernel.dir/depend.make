# Empty dependencies file for bench_fig6_per_kernel.
# This may be replaced when dependencies are built.
