file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mps.dir/bench_ablation_mps.cpp.o"
  "CMakeFiles/bench_ablation_mps.dir/bench_ablation_mps.cpp.o.d"
  "bench_ablation_mps"
  "bench_ablation_mps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
