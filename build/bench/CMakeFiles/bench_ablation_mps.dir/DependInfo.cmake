
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_mps.cpp" "bench/CMakeFiles/bench_ablation_mps.dir/bench_ablation_mps.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_mps.dir/bench_ablation_mps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/toast_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/toast_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/toast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/toast_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/xla/CMakeFiles/toast_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/toast_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/toast_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/healpix/CMakeFiles/toast_healpix.dir/DependInfo.cmake"
  "/root/repo/build/src/qarray/CMakeFiles/toast_qarray.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_model/CMakeFiles/toast_bench_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
