# Empty compiler generated dependencies file for bench_ablation_mps.
# This may be replaced when dependencies are built.
