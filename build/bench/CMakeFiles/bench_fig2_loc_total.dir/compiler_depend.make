# Empty compiler generated dependencies file for bench_fig2_loc_total.
# This may be replaced when dependencies are built.
