file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_loc_total.dir/bench_fig2_loc_total.cpp.o"
  "CMakeFiles/bench_fig2_loc_total.dir/bench_fig2_loc_total.cpp.o.d"
  "bench_fig2_loc_total"
  "bench_fig2_loc_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_loc_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
