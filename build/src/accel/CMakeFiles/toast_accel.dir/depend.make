# Empty dependencies file for toast_accel.
# This may be replaced when dependencies are built.
