file(REMOVE_RECURSE
  "CMakeFiles/toast_accel.dir/host_model.cpp.o"
  "CMakeFiles/toast_accel.dir/host_model.cpp.o.d"
  "CMakeFiles/toast_accel.dir/sim_device.cpp.o"
  "CMakeFiles/toast_accel.dir/sim_device.cpp.o.d"
  "libtoast_accel.a"
  "libtoast_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
