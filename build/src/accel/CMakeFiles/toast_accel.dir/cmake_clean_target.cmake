file(REMOVE_RECURSE
  "libtoast_accel.a"
)
