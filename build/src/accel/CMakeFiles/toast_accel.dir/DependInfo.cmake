
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/host_model.cpp" "src/accel/CMakeFiles/toast_accel.dir/host_model.cpp.o" "gcc" "src/accel/CMakeFiles/toast_accel.dir/host_model.cpp.o.d"
  "/root/repo/src/accel/sim_device.cpp" "src/accel/CMakeFiles/toast_accel.dir/sim_device.cpp.o" "gcc" "src/accel/CMakeFiles/toast_accel.dir/sim_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
