file(REMOVE_RECURSE
  "libtoast_solver.a"
)
