# Empty compiler generated dependencies file for toast_solver.
# This may be replaced when dependencies are built.
