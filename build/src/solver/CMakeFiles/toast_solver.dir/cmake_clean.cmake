file(REMOVE_RECURSE
  "CMakeFiles/toast_solver.dir/destriper.cpp.o"
  "CMakeFiles/toast_solver.dir/destriper.cpp.o.d"
  "libtoast_solver.a"
  "libtoast_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
