file(REMOVE_RECURSE
  "CMakeFiles/toast_omptarget.dir/pool.cpp.o"
  "CMakeFiles/toast_omptarget.dir/pool.cpp.o.d"
  "CMakeFiles/toast_omptarget.dir/runtime.cpp.o"
  "CMakeFiles/toast_omptarget.dir/runtime.cpp.o.d"
  "libtoast_omptarget.a"
  "libtoast_omptarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_omptarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
