file(REMOVE_RECURSE
  "libtoast_omptarget.a"
)
