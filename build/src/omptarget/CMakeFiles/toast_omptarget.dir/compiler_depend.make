# Empty compiler generated dependencies file for toast_omptarget.
# This may be replaced when dependencies are built.
