file(REMOVE_RECURSE
  "libtoast_core.a"
)
