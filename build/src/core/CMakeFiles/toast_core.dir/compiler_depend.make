# Empty compiler generated dependencies file for toast_core.
# This may be replaced when dependencies are built.
