file(REMOVE_RECURSE
  "CMakeFiles/toast_core.dir/accel_store.cpp.o"
  "CMakeFiles/toast_core.dir/accel_store.cpp.o.d"
  "CMakeFiles/toast_core.dir/context.cpp.o"
  "CMakeFiles/toast_core.dir/context.cpp.o.d"
  "CMakeFiles/toast_core.dir/observation.cpp.o"
  "CMakeFiles/toast_core.dir/observation.cpp.o.d"
  "CMakeFiles/toast_core.dir/pipeline.cpp.o"
  "CMakeFiles/toast_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/toast_core.dir/timing.cpp.o"
  "CMakeFiles/toast_core.dir/timing.cpp.o.d"
  "libtoast_core.a"
  "libtoast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
