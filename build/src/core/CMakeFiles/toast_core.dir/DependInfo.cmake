
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accel_store.cpp" "src/core/CMakeFiles/toast_core.dir/accel_store.cpp.o" "gcc" "src/core/CMakeFiles/toast_core.dir/accel_store.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/toast_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/toast_core.dir/context.cpp.o.d"
  "/root/repo/src/core/observation.cpp" "src/core/CMakeFiles/toast_core.dir/observation.cpp.o" "gcc" "src/core/CMakeFiles/toast_core.dir/observation.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/toast_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/toast_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/core/CMakeFiles/toast_core.dir/timing.cpp.o" "gcc" "src/core/CMakeFiles/toast_core.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/toast_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/xla/CMakeFiles/toast_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/qarray/CMakeFiles/toast_qarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
