file(REMOVE_RECURSE
  "libtoast_bench_model.a"
)
