file(REMOVE_RECURSE
  "CMakeFiles/toast_bench_model.dir/problem.cpp.o"
  "CMakeFiles/toast_bench_model.dir/problem.cpp.o.d"
  "libtoast_bench_model.a"
  "libtoast_bench_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_bench_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
