# Empty compiler generated dependencies file for toast_bench_model.
# This may be replaced when dependencies are built.
