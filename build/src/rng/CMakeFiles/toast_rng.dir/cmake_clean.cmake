file(REMOVE_RECURSE
  "CMakeFiles/toast_rng.dir/rng.cpp.o"
  "CMakeFiles/toast_rng.dir/rng.cpp.o.d"
  "libtoast_rng.a"
  "libtoast_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
