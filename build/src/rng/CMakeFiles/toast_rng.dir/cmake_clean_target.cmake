file(REMOVE_RECURSE
  "libtoast_rng.a"
)
