# Empty dependencies file for toast_rng.
# This may be replaced when dependencies are built.
