# Empty dependencies file for toast_xla.
# This may be replaced when dependencies are built.
