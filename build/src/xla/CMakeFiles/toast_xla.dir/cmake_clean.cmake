file(REMOVE_RECURSE
  "CMakeFiles/toast_xla.dir/array.cpp.o"
  "CMakeFiles/toast_xla.dir/array.cpp.o.d"
  "CMakeFiles/toast_xla.dir/eval.cpp.o"
  "CMakeFiles/toast_xla.dir/eval.cpp.o.d"
  "CMakeFiles/toast_xla.dir/executor.cpp.o"
  "CMakeFiles/toast_xla.dir/executor.cpp.o.d"
  "CMakeFiles/toast_xla.dir/hlo.cpp.o"
  "CMakeFiles/toast_xla.dir/hlo.cpp.o.d"
  "CMakeFiles/toast_xla.dir/jit.cpp.o"
  "CMakeFiles/toast_xla.dir/jit.cpp.o.d"
  "CMakeFiles/toast_xla.dir/passes.cpp.o"
  "CMakeFiles/toast_xla.dir/passes.cpp.o.d"
  "CMakeFiles/toast_xla.dir/types.cpp.o"
  "CMakeFiles/toast_xla.dir/types.cpp.o.d"
  "libtoast_xla.a"
  "libtoast_xla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_xla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
