file(REMOVE_RECURSE
  "libtoast_xla.a"
)
