
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xla/array.cpp" "src/xla/CMakeFiles/toast_xla.dir/array.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/array.cpp.o.d"
  "/root/repo/src/xla/eval.cpp" "src/xla/CMakeFiles/toast_xla.dir/eval.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/eval.cpp.o.d"
  "/root/repo/src/xla/executor.cpp" "src/xla/CMakeFiles/toast_xla.dir/executor.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/executor.cpp.o.d"
  "/root/repo/src/xla/hlo.cpp" "src/xla/CMakeFiles/toast_xla.dir/hlo.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/hlo.cpp.o.d"
  "/root/repo/src/xla/jit.cpp" "src/xla/CMakeFiles/toast_xla.dir/jit.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/jit.cpp.o.d"
  "/root/repo/src/xla/passes.cpp" "src/xla/CMakeFiles/toast_xla.dir/passes.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/passes.cpp.o.d"
  "/root/repo/src/xla/types.cpp" "src/xla/CMakeFiles/toast_xla.dir/types.cpp.o" "gcc" "src/xla/CMakeFiles/toast_xla.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
