file(REMOVE_RECURSE
  "libtoast_sim.a"
)
