file(REMOVE_RECURSE
  "CMakeFiles/toast_sim.dir/ground.cpp.o"
  "CMakeFiles/toast_sim.dir/ground.cpp.o.d"
  "CMakeFiles/toast_sim.dir/satellite.cpp.o"
  "CMakeFiles/toast_sim.dir/satellite.cpp.o.d"
  "CMakeFiles/toast_sim.dir/workflow.cpp.o"
  "CMakeFiles/toast_sim.dir/workflow.cpp.o.d"
  "libtoast_sim.a"
  "libtoast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
