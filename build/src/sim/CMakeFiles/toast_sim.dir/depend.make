# Empty dependencies file for toast_sim.
# This may be replaced when dependencies are built.
