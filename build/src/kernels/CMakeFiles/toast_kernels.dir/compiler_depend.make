# Empty compiler generated dependencies file for toast_kernels.
# This may be replaced when dependencies are built.
