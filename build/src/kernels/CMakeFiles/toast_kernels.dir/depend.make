# Empty dependencies file for toast_kernels.
# This may be replaced when dependencies are built.
