
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/common.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/common.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/common.cpp.o.d"
  "/root/repo/src/kernels/cpu/build_noise_weighted.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/build_noise_weighted.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/build_noise_weighted.cpp.o.d"
  "/root/repo/src/kernels/cpu/noise_weight.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/noise_weight.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/noise_weight.cpp.o.d"
  "/root/repo/src/kernels/cpu/pixels_healpix.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/pixels_healpix.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/pixels_healpix.cpp.o.d"
  "/root/repo/src/kernels/cpu/pointing_detector.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/pointing_detector.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/pointing_detector.cpp.o.d"
  "/root/repo/src/kernels/cpu/scan_map.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/scan_map.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/scan_map.cpp.o.d"
  "/root/repo/src/kernels/cpu/stokes_weights.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/stokes_weights.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/stokes_weights.cpp.o.d"
  "/root/repo/src/kernels/cpu/template_offset.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/template_offset.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/cpu/template_offset.cpp.o.d"
  "/root/repo/src/kernels/jax/build_noise_weighted.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/build_noise_weighted.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/build_noise_weighted.cpp.o.d"
  "/root/repo/src/kernels/jax/noise_weight.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/noise_weight.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/noise_weight.cpp.o.d"
  "/root/repo/src/kernels/jax/pixels_healpix.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/pixels_healpix.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/pixels_healpix.cpp.o.d"
  "/root/repo/src/kernels/jax/pointing_detector.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/pointing_detector.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/pointing_detector.cpp.o.d"
  "/root/repo/src/kernels/jax/scan_map.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/scan_map.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/scan_map.cpp.o.d"
  "/root/repo/src/kernels/jax/stokes_weights.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/stokes_weights.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/stokes_weights.cpp.o.d"
  "/root/repo/src/kernels/jax/support.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/support.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/support.cpp.o.d"
  "/root/repo/src/kernels/jax/template_offset.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/jax/template_offset.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/jax/template_offset.cpp.o.d"
  "/root/repo/src/kernels/omptarget/build_noise_weighted.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/build_noise_weighted.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/build_noise_weighted.cpp.o.d"
  "/root/repo/src/kernels/omptarget/noise_weight.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/noise_weight.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/noise_weight.cpp.o.d"
  "/root/repo/src/kernels/omptarget/pixels_healpix.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/pixels_healpix.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/pixels_healpix.cpp.o.d"
  "/root/repo/src/kernels/omptarget/pointing_detector.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/pointing_detector.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/pointing_detector.cpp.o.d"
  "/root/repo/src/kernels/omptarget/scan_map.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/scan_map.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/scan_map.cpp.o.d"
  "/root/repo/src/kernels/omptarget/stokes_weights.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/stokes_weights.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/stokes_weights.cpp.o.d"
  "/root/repo/src/kernels/omptarget/template_offset.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/template_offset.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/omptarget/template_offset.cpp.o.d"
  "/root/repo/src/kernels/ops_common.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/ops_common.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/ops_common.cpp.o.d"
  "/root/repo/src/kernels/ops_mapmaking.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/ops_mapmaking.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/ops_mapmaking.cpp.o.d"
  "/root/repo/src/kernels/ops_pointing.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/ops_pointing.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/ops_pointing.cpp.o.d"
  "/root/repo/src/kernels/ops_template.cpp" "src/kernels/CMakeFiles/toast_kernels.dir/ops_template.cpp.o" "gcc" "src/kernels/CMakeFiles/toast_kernels.dir/ops_template.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/toast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/healpix/CMakeFiles/toast_healpix.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/toast_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/xla/CMakeFiles/toast_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/qarray/CMakeFiles/toast_qarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
