file(REMOVE_RECURSE
  "libtoast_kernels.a"
)
