file(REMOVE_RECURSE
  "CMakeFiles/toast_healpix.dir/healpix.cpp.o"
  "CMakeFiles/toast_healpix.dir/healpix.cpp.o.d"
  "libtoast_healpix.a"
  "libtoast_healpix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_healpix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
