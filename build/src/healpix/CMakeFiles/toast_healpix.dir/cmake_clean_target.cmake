file(REMOVE_RECURSE
  "libtoast_healpix.a"
)
