# Empty dependencies file for toast_healpix.
# This may be replaced when dependencies are built.
