file(REMOVE_RECURSE
  "libtoast_mpisim.a"
)
