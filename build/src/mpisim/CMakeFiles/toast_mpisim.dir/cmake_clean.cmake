file(REMOVE_RECURSE
  "CMakeFiles/toast_mpisim.dir/comm.cpp.o"
  "CMakeFiles/toast_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/toast_mpisim.dir/job.cpp.o"
  "CMakeFiles/toast_mpisim.dir/job.cpp.o.d"
  "libtoast_mpisim.a"
  "libtoast_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
