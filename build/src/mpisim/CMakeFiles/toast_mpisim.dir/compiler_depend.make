# Empty compiler generated dependencies file for toast_mpisim.
# This may be replaced when dependencies are built.
