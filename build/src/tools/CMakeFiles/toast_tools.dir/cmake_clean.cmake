file(REMOVE_RECURSE
  "CMakeFiles/toast_tools.dir/loc.cpp.o"
  "CMakeFiles/toast_tools.dir/loc.cpp.o.d"
  "libtoast_tools.a"
  "libtoast_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
