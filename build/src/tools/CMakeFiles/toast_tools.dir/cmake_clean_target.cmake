file(REMOVE_RECURSE
  "libtoast_tools.a"
)
