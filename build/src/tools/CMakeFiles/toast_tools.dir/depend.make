# Empty dependencies file for toast_tools.
# This may be replaced when dependencies are built.
