
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/timing_merge_main.cpp" "src/tools/CMakeFiles/toast_timing_merge.dir/timing_merge_main.cpp.o" "gcc" "src/tools/CMakeFiles/toast_timing_merge.dir/timing_merge_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/toast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/omptarget/CMakeFiles/toast_omptarget.dir/DependInfo.cmake"
  "/root/repo/build/src/xla/CMakeFiles/toast_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/qarray/CMakeFiles/toast_qarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
