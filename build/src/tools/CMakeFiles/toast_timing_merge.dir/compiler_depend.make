# Empty compiler generated dependencies file for toast_timing_merge.
# This may be replaced when dependencies are built.
