file(REMOVE_RECURSE
  "CMakeFiles/toast_timing_merge.dir/timing_merge_main.cpp.o"
  "CMakeFiles/toast_timing_merge.dir/timing_merge_main.cpp.o.d"
  "toast_timing_merge"
  "toast_timing_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_timing_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
