# Empty dependencies file for toast_qarray.
# This may be replaced when dependencies are built.
