file(REMOVE_RECURSE
  "libtoast_qarray.a"
)
