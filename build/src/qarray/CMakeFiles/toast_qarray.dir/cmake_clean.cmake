file(REMOVE_RECURSE
  "CMakeFiles/toast_qarray.dir/qarray.cpp.o"
  "CMakeFiles/toast_qarray.dir/qarray.cpp.o.d"
  "libtoast_qarray.a"
  "libtoast_qarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_qarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
