file(REMOVE_RECURSE
  "libtoast_fft.a"
)
