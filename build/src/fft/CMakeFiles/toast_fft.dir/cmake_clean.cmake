file(REMOVE_RECURSE
  "CMakeFiles/toast_fft.dir/fft.cpp.o"
  "CMakeFiles/toast_fft.dir/fft.cpp.o.d"
  "libtoast_fft.a"
  "libtoast_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
