# Empty dependencies file for toast_fft.
# This may be replaced when dependencies are built.
