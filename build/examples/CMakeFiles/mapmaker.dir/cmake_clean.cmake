file(REMOVE_RECURSE
  "CMakeFiles/mapmaker.dir/mapmaker.cpp.o"
  "CMakeFiles/mapmaker.dir/mapmaker.cpp.o.d"
  "mapmaker"
  "mapmaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapmaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
