# Empty dependencies file for mapmaker.
# This may be replaced when dependencies are built.
