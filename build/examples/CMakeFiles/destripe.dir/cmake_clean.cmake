file(REMOVE_RECURSE
  "CMakeFiles/destripe.dir/destripe.cpp.o"
  "CMakeFiles/destripe.dir/destripe.cpp.o.d"
  "destripe"
  "destripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/destripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
