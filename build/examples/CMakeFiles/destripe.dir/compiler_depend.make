# Empty compiler generated dependencies file for destripe.
# This may be replaced when dependencies are built.
