# Empty dependencies file for satellite_benchmark.
# This may be replaced when dependencies are built.
