file(REMOVE_RECURSE
  "CMakeFiles/satellite_benchmark.dir/satellite_benchmark.cpp.o"
  "CMakeFiles/satellite_benchmark.dir/satellite_benchmark.cpp.o.d"
  "satellite_benchmark"
  "satellite_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
