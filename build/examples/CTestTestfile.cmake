# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_cpu "/root/repo/build/examples/quickstart" "cpu")
set_tests_properties(example_quickstart_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_jax "/root/repo/build/examples/quickstart" "jax")
set_tests_properties(example_quickstart_jax PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_omptarget "/root/repo/build/examples/quickstart" "omptarget")
set_tests_properties(example_quickstart_omptarget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_playground_stokes "/root/repo/build/examples/kernel_playground" "stokes")
set_tests_properties(example_kernel_playground_stokes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_playground_pixels "/root/repo/build/examples/kernel_playground" "pixels")
set_tests_properties(example_kernel_playground_pixels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_playground_project "/root/repo/build/examples/kernel_playground" "project")
set_tests_properties(example_kernel_playground_project PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_satellite_benchmark "/root/repo/build/examples/satellite_benchmark" "medium" "omptarget" "16")
set_tests_properties(example_satellite_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mapmaker "/root/repo/build/examples/mapmaker" "omptarget" "2")
set_tests_properties(example_mapmaker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_destripe "/root/repo/build/examples/destripe" "cpu")
set_tests_properties(example_destripe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
