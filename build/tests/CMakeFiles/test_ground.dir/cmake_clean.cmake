file(REMOVE_RECURSE
  "CMakeFiles/test_ground.dir/test_ground.cpp.o"
  "CMakeFiles/test_ground.dir/test_ground.cpp.o.d"
  "test_ground"
  "test_ground.pdb"
  "test_ground[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
