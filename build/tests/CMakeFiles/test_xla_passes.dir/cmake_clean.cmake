file(REMOVE_RECURSE
  "CMakeFiles/test_xla_passes.dir/test_xla_passes.cpp.o"
  "CMakeFiles/test_xla_passes.dir/test_xla_passes.cpp.o.d"
  "test_xla_passes"
  "test_xla_passes.pdb"
  "test_xla_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xla_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
