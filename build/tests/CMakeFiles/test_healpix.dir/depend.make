# Empty dependencies file for test_healpix.
# This may be replaced when dependencies are built.
