file(REMOVE_RECURSE
  "CMakeFiles/test_healpix.dir/test_healpix.cpp.o"
  "CMakeFiles/test_healpix.dir/test_healpix.cpp.o.d"
  "test_healpix"
  "test_healpix.pdb"
  "test_healpix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_healpix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
