# Empty compiler generated dependencies file for test_cost_consistency.
# This may be replaced when dependencies are built.
