file(REMOVE_RECURSE
  "CMakeFiles/test_cost_consistency.dir/test_cost_consistency.cpp.o"
  "CMakeFiles/test_cost_consistency.dir/test_cost_consistency.cpp.o.d"
  "test_cost_consistency"
  "test_cost_consistency.pdb"
  "test_cost_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
