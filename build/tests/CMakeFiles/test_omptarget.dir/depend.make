# Empty dependencies file for test_omptarget.
# This may be replaced when dependencies are built.
