file(REMOVE_RECURSE
  "CMakeFiles/test_omptarget.dir/test_omptarget.cpp.o"
  "CMakeFiles/test_omptarget.dir/test_omptarget.cpp.o.d"
  "test_omptarget"
  "test_omptarget.pdb"
  "test_omptarget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omptarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
