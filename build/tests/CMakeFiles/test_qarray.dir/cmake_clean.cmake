file(REMOVE_RECURSE
  "CMakeFiles/test_qarray.dir/test_qarray.cpp.o"
  "CMakeFiles/test_qarray.dir/test_qarray.cpp.o.d"
  "test_qarray"
  "test_qarray.pdb"
  "test_qarray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
