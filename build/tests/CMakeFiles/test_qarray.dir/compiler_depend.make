# Empty compiler generated dependencies file for test_qarray.
# This may be replaced when dependencies are built.
