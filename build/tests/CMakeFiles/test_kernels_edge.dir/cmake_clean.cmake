file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_edge.dir/test_kernels_edge.cpp.o"
  "CMakeFiles/test_kernels_edge.dir/test_kernels_edge.cpp.o.d"
  "test_kernels_edge"
  "test_kernels_edge.pdb"
  "test_kernels_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
