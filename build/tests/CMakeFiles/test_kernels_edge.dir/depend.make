# Empty dependencies file for test_kernels_edge.
# This may be replaced when dependencies are built.
