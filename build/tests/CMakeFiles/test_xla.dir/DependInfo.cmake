
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_xla.cpp" "tests/CMakeFiles/test_xla.dir/test_xla.cpp.o" "gcc" "tests/CMakeFiles/test_xla.dir/test_xla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xla/CMakeFiles/toast_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/toast_accel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
