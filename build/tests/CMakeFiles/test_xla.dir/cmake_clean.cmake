file(REMOVE_RECURSE
  "CMakeFiles/test_xla.dir/test_xla.cpp.o"
  "CMakeFiles/test_xla.dir/test_xla.cpp.o.d"
  "test_xla"
  "test_xla.pdb"
  "test_xla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
