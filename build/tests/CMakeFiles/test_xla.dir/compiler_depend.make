# Empty compiler generated dependencies file for test_xla.
# This may be replaced when dependencies are built.
