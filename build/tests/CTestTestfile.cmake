# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_qarray[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_healpix[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_omptarget[1]_include.cmake")
include("/root/repo/build/tests/test_xla[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_xla_passes[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_edge[1]_include.cmake")
include("/root/repo/build/tests/test_ground[1]_include.cmake")
include("/root/repo/build/tests/test_cost_consistency[1]_include.cmake")
