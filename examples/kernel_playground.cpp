// Kernel playground: run one kernel through all three implementations on
// identical data, verify the results agree bit-for-bit, and show what the
// mini-XLA compiled for the JAX port (the HLO module after optimization).
//
//   ./kernel_playground [stokes|pixels|project]

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"
#include "kernels/omptarget.hpp"
#include "qarray/qarray.hpp"

using namespace toast;
using core::Backend;
using core::Interval;

namespace {

core::ExecContext make_ctx(Backend b, double scale) {
  core::ExecConfig cfg;
  cfg.backend = b;
  cfg.work_scale = scale;
  return core::ExecContext(cfg);
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "stokes";

  // Shared test data: 4 detectors, ~7k samples, jittered intervals.
  const std::int64_t n_det = 4, n_samp = 7000;
  std::vector<Interval> intervals{{0, 2400}, {2600, 4300}, {4500, 7000}};
  std::mt19937 gen(2023);
  std::normal_distribution<double> nd(0.0, 1.0);
  std::vector<double> quats(static_cast<std::size_t>(4 * n_det * n_samp));
  for (std::int64_t i = 0; i < n_det * n_samp; ++i) {
    const auto q = qarray::normalize({nd(gen), nd(gen), nd(gen), nd(gen)});
    for (int c = 0; c < 4; ++c) {
      quats[static_cast<std::size_t>(4 * i + c)] =
          q[static_cast<std::size_t>(c)];
    }
  }
  std::vector<double> hwp(static_cast<std::size_t>(n_samp));
  for (auto& v : hwp) v = nd(gen);
  const std::vector<double> pol_eff(static_cast<std::size_t>(n_det), 0.95);
  std::vector<double> signal(static_cast<std::size_t>(n_det * n_samp));
  for (auto& v : signal) v = nd(gen);

  auto cpu_ctx = make_ctx(Backend::kCpu, 1e5);
  auto omp_ctx = make_ctx(Backend::kOmpTarget, 1e5);
  auto jax_ctx = make_ctx(Backend::kJax, 1e5);
  std::string kernel_name;

  if (which == "stokes") {
    kernel_name = "stokes_weights_IQU";
    const std::size_t n = static_cast<std::size_t>(3 * n_det * n_samp);
    std::vector<double> w_cpu(n), w_omp(n), w_jax(n);
    kernels::cpu::stokes_weights_iqu(quats, hwp, pol_eff, intervals, n_det,
                                     n_samp, w_cpu, cpu_ctx);
    kernels::omp::stokes_weights_iqu(quats.data(), hwp.data(),
                                     pol_eff.data(), intervals, n_det,
                                     n_samp, w_omp.data(), omp_ctx, true);
    kernels::jax::stokes_weights_iqu(quats.data(), hwp.data(),
                                     pol_eff.data(), intervals, n_det,
                                     n_samp, w_jax.data(), jax_ctx);
    std::printf("max |cpu - omp| = %.3e, max |cpu - jax| = %.3e\n",
                max_abs_diff(w_cpu, w_omp), max_abs_diff(w_cpu, w_jax));
  } else if (which == "pixels") {
    kernel_name = "pixels_healpix";
    const std::size_t n = static_cast<std::size_t>(n_det * n_samp);
    std::vector<std::int64_t> p_cpu(n), p_omp(n), p_jax(n);
    kernels::cpu::pixels_healpix(quats, {}, 1, 256, true, intervals, n_det,
                                 n_samp, p_cpu, cpu_ctx);
    kernels::omp::pixels_healpix(quats.data(), nullptr, 1, 256, true,
                                 intervals, n_det, n_samp, p_omp.data(),
                                 omp_ctx, true);
    kernels::jax::pixels_healpix(quats.data(), nullptr, 1, 256, true,
                                 intervals, n_det, n_samp, p_jax.data(),
                                 jax_ctx);
    long mismatches = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (p_cpu[i] != p_omp[i] || p_cpu[i] != p_jax[i]) ++mismatches;
    }
    std::printf("pixel mismatches across backends: %ld of %zu\n", mismatches,
                n);
  } else if (which == "project") {
    kernel_name = "template_offset_project_signal";
    const std::int64_t step = 128;
    const std::int64_t n_amp_det = (n_samp + step - 1) / step;
    const std::size_t n = static_cast<std::size_t>(n_det * n_amp_det);
    std::vector<double> a_cpu(n, 0.0), a_omp(n, 0.0), a_jax(n, 0.0);
    kernels::cpu::template_offset_project_signal(
        step, signal, intervals, n_det, n_samp, a_cpu, n_amp_det, cpu_ctx);
    kernels::omp::template_offset_project_signal(
        step, signal.data(), intervals, n_det, n_samp, a_omp.data(),
        n_amp_det, omp_ctx, true);
    kernels::jax::template_offset_project_signal(
        step, signal.data(), intervals, n_det, n_samp, a_jax.data(),
        n_amp_det, jax_ctx);
    std::printf("max |cpu - omp| = %.3e, max |cpu - jax| = %.3e\n",
                max_abs_diff(a_cpu, a_omp), max_abs_diff(a_cpu, a_jax));
  } else {
    std::fprintf(stderr, "usage: %s [stokes|pixels|project]\n", argv[0]);
    return 2;
  }

  std::printf("\nmodelled kernel seconds (at 1e5x scale):\n");
  std::printf("  cpu baseline : %10.4f s\n", cpu_ctx.log().seconds(kernel_name));
  std::printf("  omp-target   : %10.4f s  (%.1fx)\n",
              omp_ctx.log().seconds(kernel_name),
              cpu_ctx.log().seconds(kernel_name) /
                  omp_ctx.log().seconds(kernel_name));
  std::printf("  jax          : %10.4f s  (%.1fx, incl. %.3f s jit)\n",
              jax_ctx.log().seconds(kernel_name),
              cpu_ctx.log().seconds(kernel_name) /
                  jax_ctx.log().seconds(kernel_name),
              jax_ctx.log().seconds("jit_compile"));
  return 0;
}
