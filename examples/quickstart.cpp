// Quickstart: simulate a small satellite observation, run the pointing +
// map-making pipeline on your backend of choice, and print the timing
// breakdown the framework collected.
//
//   ./quickstart [cpu|omptarget|jax|jax-cpu]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "core/timing.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

using namespace toast;

int main(int argc, char** argv) {
  core::Backend backend = core::Backend::kOmpTarget;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "cpu") backend = core::Backend::kCpu;
    else if (arg == "omptarget") backend = core::Backend::kOmpTarget;
    else if (arg == "jax") backend = core::Backend::kJax;
    else if (arg == "jax-cpu") backend = core::Backend::kJaxCpu;
    else {
      std::fprintf(stderr, "usage: %s [cpu|omptarget|jax|jax-cpu]\n", argv[0]);
      return 2;
    }
  }

  // 1. An instrument: 8 detectors in a hex focalplane at 37 Hz.
  const auto focalplane = sim::hex_focalplane(8, 37.0);

  // 2. An observation: 20 minutes of satellite scanning.
  const auto n_samples = static_cast<std::int64_t>(20 * 60 * 37);
  core::Data data;
  data.observations.push_back(
      sim::simulate_satellite("quickstart", focalplane, n_samples));
  std::printf("observation: %lld samples x %lld detectors, %zu intervals\n",
              static_cast<long long>(n_samples),
              static_cast<long long>(focalplane.n_detectors()),
              data.observations[0].intervals().size());

  // 3. An execution context: which kernel implementations run, and the
  //    simulated hardware they are modelled on.
  core::ExecConfig config;
  config.backend = backend;
  config.threads = 4;
  core::ExecContext ctx(config);

  // 4. The benchmark pipeline: sky + noise simulation, pointing
  //    expansion, and three iterations of the map-making section.
  sim::WorkflowConfig wf;
  wf.nside = 64;
  wf.map_iterations = 3;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);

  // 5. Results: science products live in named observation fields.
  const auto& ob = data.observations[0];
  const auto signal = ob.field(core::fields::kSignal).f64();
  double rms = 0.0;
  for (const double v : signal) rms += v * v;
  rms = std::sqrt(rms / static_cast<double>(signal.size()));
  std::printf("backend %s: signal rms %.3e K, modelled time %.3f s\n",
              core::to_string(backend), rms, ctx.elapsed());

  // 6. The per-kernel timing log (the paper's §3.2.3 tooling).  Save it
  //    and compare runs with tools/toast_timing_merge.
  std::printf("\nper-category modelled seconds:\n");
  for (const auto& name : ctx.log().categories()) {
    std::printf("  %-34s %10.6f  (%ld calls)\n", name.c_str(),
                ctx.log().seconds(name), ctx.log().calls(name));
  }
  const std::string csv = std::string("quickstart_") +
                          core::to_string(backend) + ".csv";
  core::write_timing_csv(ctx.log(), csv);
  std::printf("\ntiming written to %s\n", csv.c_str());
  return 0;
}
