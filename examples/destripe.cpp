// Destriping demo: inject step-wise noise offsets into a simulated
// observation, solve for them with the preconditioned-CG destriper (built
// entirely from the paper's kernels), and report how much of the striping
// was removed.
//
//   ./destripe [cpu|omptarget|jax]

#include <cmath>
#include <cstdio>
#include <random>
#include <string>

#include "core/pipeline.hpp"
#include "kernels/operators.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

using namespace toast;
using core::Backend;

int main(int argc, char** argv) {
  Backend backend = Backend::kOmpTarget;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "cpu") backend = Backend::kCpu;
    else if (arg == "omptarget") backend = Backend::kOmpTarget;
    else if (arg == "jax") backend = Backend::kJax;
    else {
      std::fprintf(stderr, "usage: %s [cpu|omptarget|jax]\n", argv[0]);
      return 2;
    }
  }

  solver::DestriperConfig cfg;
  cfg.nside = 32;
  cfg.step_length = 256;
  cfg.max_iterations = 200;
  cfg.tolerance = 1e-8;

  // Observation with pointing + scanned sky.
  const auto fp = sim::hex_focalplane(8, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 90.0;
  auto ob = sim::simulate_satellite("destripe", fp, 16384, scan, 17);
  core::ExecConfig ec;
  ec.backend = backend;
  core::ExecContext ctx(ec);
  sim::WorkflowConfig wf;
  wf.nside = cfg.nside;
  core::Data data;
  data.observations.push_back(std::move(ob));
  sim::make_scan_pipeline(wf).exec(data, ctx);
  auto& obs = data.observations[0];

  // Inject 1/f-like drifting offsets.
  const std::int64_t n_det = obs.n_detectors();
  const std::int64_t n_samp = obs.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + cfg.step_length - 1) / cfg.step_length;
  std::mt19937 gen(99);
  std::normal_distribution<double> step(0.0, 3e-5);
  std::vector<double> drift(static_cast<std::size_t>(n_det * n_amp_det));
  for (std::int64_t d = 0; d < n_det; ++d) {
    double level = 0.0;
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      level += step(gen);  // random walk = low-frequency drift
      drift[static_cast<std::size_t>(d * n_amp_det + a)] = level;
    }
  }
  auto signal = obs.field(core::fields::kSignal).f64();
  double sky_rms = 0.0;
  for (const double v : signal) sky_rms += v * v;
  sky_rms = std::sqrt(sky_rms / static_cast<double>(signal.size()));
  for (std::int64_t d = 0; d < n_det; ++d) {
    for (std::int64_t t = 0; t < n_samp; ++t) {
      signal[static_cast<std::size_t>(d * n_samp + t)] +=
          drift[static_cast<std::size_t>(d * n_amp_det +
                                         t / cfg.step_length)];
    }
  }
  double striped_rms = 0.0;
  for (const double v : signal) striped_rms += v * v;
  striped_rms = std::sqrt(striped_rms / static_cast<double>(signal.size()));

  // Solve and clean.
  solver::Destriper destriper(cfg);
  const auto result = destriper.solve(obs, ctx, backend);
  destriper.apply(obs, result, ctx, backend);

  double clean_rms = 0.0;
  for (const double v : obs.field(core::fields::kSignal).f64()) {
    clean_rms += v * v;
  }
  clean_rms = std::sqrt(clean_rms /
                        static_cast<double>(n_det * n_samp));

  std::printf("destriper on %s:\n", core::to_string(backend));
  std::printf("  CG: %d iterations, residual reduced %.2e, converged: %s\n",
              result.iterations, result.reduction(),
              result.converged ? "yes" : "no");
  std::printf("  timestream rms: sky only %.3e | with drifts %.3e | "
              "destriped %.3e\n",
              sky_rms, striped_rms, clean_rms);
  std::printf("  drift power removed: %.1f%%\n",
              100.0 * (1.0 - (clean_rms * clean_rms - sky_rms * sky_rms) /
                                 (striped_rms * striped_rms -
                                  sky_rms * sky_rms)));
  std::printf("  modelled solver time: %.3f s (%ld kernel launches)\n",
              ctx.elapsed(),
              static_cast<long>(ctx.device().total_launches()));
  return result.converged ? 0 : 1;
}
