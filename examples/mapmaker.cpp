// End-to-end mini map-maker: several simulated "MPI ranks" each observe
// the same synthetic sky with independent noise, bin their noise-weighted
// timestreams into local maps, and the maps are combined with the in-
// process allreduce.  The recovered map is compared against the input sky
// — the science validation a CMB pipeline ultimately needs.
//
//   ./mapmaker [backend] [n_ranks]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/jax.hpp"
#include "mpisim/comm.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

using namespace toast;

int main(int argc, char** argv) {
  core::Backend backend = core::Backend::kOmpTarget;
  int n_ranks = 4;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "cpu") backend = core::Backend::kCpu;
    else if (arg == "omptarget") backend = core::Backend::kOmpTarget;
    else if (arg == "jax") backend = core::Backend::kJax;
    else {
      std::fprintf(stderr, "usage: %s [cpu|omptarget|jax] [n_ranks]\n",
                   argv[0]);
      return 2;
    }
  }
  if (argc > 2) {
    n_ranks = std::stoi(argv[2]);
  }

  const std::int64_t nside = 16;
  const std::int64_t nnz = 3;
  const std::int64_t n_pix = 12 * nside * nside;
  const auto sky = sim::synthetic_sky(nside, nnz);
  const auto fp = sim::hex_focalplane(8, 37.0, 10.0, 5.0e-6);

  // Each rank: simulate, scan, noise-weight, bin.
  std::vector<std::vector<double>> rank_maps;
  std::vector<std::vector<double>> rank_hits;
  double total_modelled_seconds = 0.0;
  for (int rank = 0; rank < n_ranks; ++rank) {
    core::ExecConfig cfg;
    cfg.backend = backend;
    core::ExecContext ctx(cfg);
    kernels::jax::clear_jit_caches();

    core::Data data;
    sim::ScanParams scan;
    scan.spin_period = 120.0;
    data.observations.push_back(sim::simulate_satellite(
        "rank" + std::to_string(rank), fp, 32768, scan,
        1000 + static_cast<std::uint64_t>(rank)));

    sim::WorkflowConfig wf;
    wf.nside = nside;
    wf.nnz = nnz;
    wf.map_iterations = 1;
    wf.include_unported = false;
    auto pipeline = sim::make_benchmark_pipeline(wf);
    pipeline.exec(data, ctx);
    total_modelled_seconds += ctx.elapsed();

    const auto& ob = data.observations[0];
    const auto zmap = ob.field(core::fields::kZmap).f64();
    rank_maps.emplace_back(zmap.begin(), zmap.end());

    // Hit-weight accumulator for the normalization (intensity only).
    std::vector<double> hits(static_cast<std::size_t>(n_pix), 0.0);
    const auto pixels = ob.field(core::fields::kPixels).i64();
    for (const auto p : pixels) {
      if (p >= 0) {
        hits[static_cast<std::size_t>(p)] += 1.0;
      }
    }
    rank_hits.push_back(std::move(hits));
  }

  // Combine across ranks.
  const mpisim::LocalComm world(n_ranks);
  const auto zmap = world.allreduce_sum(rank_maps);
  const auto hits = world.allreduce_sum(rank_hits);

  // Simple intensity estimate: zmap_I / (hits * inverse variance); the
  // noise-weighting applied the same weight to every sample of a
  // detector, so the ratio to the input I map is nearly constant.
  double covered = 0.0;
  double corr_num = 0.0, corr_ii = 0.0, corr_ss = 0.0;
  for (std::int64_t p = 0; p < n_pix; ++p) {
    const double h = hits[static_cast<std::size_t>(p)];
    if (h < 1.0) {
      continue;
    }
    covered += 1.0;
    const double est = zmap[static_cast<std::size_t>(p * nnz)] / h;
    const double truth = sky[static_cast<std::size_t>(p * nnz)];
    corr_num += est * truth;
    corr_ii += est * est;
    corr_ss += truth * truth;
  }
  const double corr = corr_num / std::sqrt(corr_ii * corr_ss);

  std::printf("mapmaker on %s with %d ranks:\n", core::to_string(backend),
              n_ranks);
  std::printf("  sky coverage        : %.1f%% of %lld pixels\n",
              100.0 * covered / static_cast<double>(n_pix),
              static_cast<long long>(n_pix));
  std::printf("  map/sky correlation : %.4f (1.0 = perfect recovery)\n",
              corr);
  std::printf("  modelled time       : %.3f s across ranks\n",
              total_modelled_seconds);
  if (corr < 0.9) {
    std::printf("  WARNING: poor recovery - check the pipeline!\n");
    return 1;
  }
  std::printf("  recovered the input sky.\n");
  return 0;
}
