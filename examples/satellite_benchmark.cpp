// Satellite benchmark driver: run the paper's medium or large problem for
// any backend / process-count / MPS / staging configuration and print the
// modelled job runtime with its decomposition.  This is the programmable
// version of the Figure 4/5 benchmarks.
//
//   ./satellite_benchmark [medium|large] [backend] [procs] [--no-mps]
//                         [--naive] [--prealloc]

#include <cstdio>
#include <cstring>
#include <string>

#include "mpisim/job.hpp"

using namespace toast;

int main(int argc, char** argv) {
  auto problem = bench_model::medium_problem();
  core::Backend backend = core::Backend::kOmpTarget;
  mpisim::JobConfig cfg{problem, backend};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "medium") cfg.problem = bench_model::medium_problem();
    else if (arg == "large") cfg.problem = bench_model::large_problem();
    else if (arg == "cpu") cfg.schedule.set_backend(core::Backend::kCpu);
    else if (arg == "omptarget") cfg.schedule.set_backend(core::Backend::kOmpTarget);
    else if (arg == "jax") cfg.schedule.set_backend(core::Backend::kJax);
    else if (arg == "jax-cpu") cfg.schedule.set_backend(core::Backend::kJaxCpu);
    else if (arg == "--no-mps") cfg.schedule.device.mps = false;
    else if (arg == "--naive") cfg.schedule.staging.mode = core::Pipeline::Staging::kNaive;
    else if (arg == "--prealloc") cfg.schedule.device.jax_preallocate = true;
    else if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
      cfg.problem.procs_per_node = std::stoi(arg);
    } else {
      std::fprintf(stderr,
                   "usage: %s [medium|large] [cpu|omptarget|jax|jax-cpu] "
                   "[procs-per-node] [--no-mps] [--naive] [--prealloc]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("problem %s: %.1e samples over %d node(s), %d procs/node x %d "
              "threads, %d GPU(s)/node\n",
              cfg.problem.name.c_str(), cfg.problem.paper_total_samples,
              cfg.problem.nodes, cfg.problem.procs_per_node,
              cfg.problem.threads_per_proc(), cfg.problem.gpus_per_node);
  std::printf("backend %s, mps %s, staging %s\n",
              core::to_string(cfg.backend_id()),
              cfg.schedule.device.mps ? "on" : "off",
              cfg.schedule.staging.mode == core::Pipeline::Staging::kPipelined
                  ? "pipelined"
                  : "naive");

  const auto result = mpisim::run_benchmark_job(cfg);
  if (result.oom) {
    std::printf("\n-> does not fit: %s\n", result.oom_reason.c_str());
    std::printf("   host/proc %.1f GB, device/proc %.1f GB (device/GPU "
                "%.1f GB of 40)\n",
                result.memory.host_bytes_per_proc / 1e9,
                result.memory.device_bytes_per_proc / 1e9,
                result.memory.device_bytes_per_gpu / 1e9);
    return 1;
  }

  std::printf("\nmodelled job runtime : %10.2f s\n", result.runtime);
  std::printf("  host lane          : %10.2f s\n", result.host_seconds);
  std::printf("  device (one rank)  : %10.2f s\n", result.device_seconds);
  std::printf("  device busy / GPU  : %10.2f s\n", result.device_busy_per_gpu);
  std::printf("  PCIe transfers     : %10.2f s\n", result.transfer_seconds);
  std::printf("  MPI collectives    : %10.4f s\n", result.comm_seconds);
  std::printf("  host mem / proc    : %10.2f GB\n",
              result.memory.host_bytes_per_proc / 1e9);
  std::printf("  device mem / GPU   : %10.2f GB\n",
              result.memory.device_bytes_per_gpu / 1e9);

  std::printf("\ntop categories (one rank):\n");
  for (const auto& name : result.rank_log.categories()) {
    const double s = result.rank_log.seconds(name);
    if (s > 0.01 * result.runtime) {
      std::printf("  %-34s %10.3f s\n", name.c_str(), s);
    }
  }
  return 0;
}
